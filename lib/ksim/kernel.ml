type config = {
  phys_pages : int;
  cost_params : Vmem.Cost.params option;
  cpus : int;
  commit_policy : Vmem.Frame.policy;
  aslr : bool;
  seed : int;
  sched : [ `Fifo | `Random ];
  trace_capacity : int option;
  pipe_capacity : int;
  max_fds : int;
  fault : Fault.spec option;
  smp : bool;
  par_jobs : int;
  demand_paging : bool;
  pager_readahead : int;
}

let default_config =
  {
    phys_pages = 262_144 (* 1 GiB *);
    cost_params = None;
    cpus = 4;
    commit_policy = Vmem.Frame.Strict;
    aslr = true;
    seed = 42;
    sched = `Fifo;
    trace_capacity = None;
    pipe_capacity = 65536;
    max_fds = 256;
    fault = None;
    smp = false;
    par_jobs = 1;
    demand_paging = false;
    pager_readahead = 0;
  }

type parked =
  | Parked : {
      th : Proc.thread;
      why : string;
      check : unit -> 'a option;
      k : ('a, unit) Effect.Deep.continuation;
      req : 'a Sysreq.t;
      entry_cycles : float;  (** cost-meter reading at dispatch *)
      targs : (string * string) list;
      tdetail : Trace.detail;
    }
      -> parked

type stall = { pid : Types.pid; tid : Types.tid; why : string }
type outcome = All_exited | Stalled of stall list | Tick_limit

(* SMP machines replace the single ready queue with per-CPU run queues.
   Threads have an affinity home ([Proc.thread.cpu]); idle CPUs steal
   from the longest remote queue. *)
type smp_state = {
  ncpu : int;
  runqs : Proc.thread Queue.t array;  (* indexed by home CPU *)
  last_as : Vmem.Addr_space.t option array;
      (* the space last run on each CPU, for context-switch flush
         accounting. Compared with [==] only — it may be destroyed. *)
  mutable rr : int;  (* round-robin placement cursor for new threads *)
}

let pp_outcome ppf = function
  | All_exited -> Format.pp_print_string ppf "all-exited"
  | Tick_limit -> Format.pp_print_string ppf "tick-limit"
  | Stalled stalls ->
    Format.fprintf ppf "stalled(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf s -> Format.fprintf ppf "pid%d/tid%d:%s" s.pid s.tid s.why))
      stalls

type t = {
  config : config;
  frames : Vmem.Frame.t;
  cost : Vmem.Cost.t;
  tlb : Vmem.Tlb.t;
  vfs : Vfs.t;
  programs : (string, Program.t) Hashtbl.t;
  procs : (Types.pid, Proc.t) Hashtbl.t;
  statuses : (Types.pid, Types.status) Hashtbl.t;
  alarms : (Types.pid, int) Hashtbl.t;
  mutable next_pid : int;
  mutable next_tid : int;
  ready : Proc.thread Queue.t;
  mutable parked : parked list;
  mutable clock : int;
  rng : Prng.Splitmix.t;
  trace : Trace.t option;
  kstat : Kstat.t;
  blame : Vmem.Blame.t;
  fault : Fault.t option;
  (* the machine's one user-mode pager, installed into every address
     space the kernel creates when [demand_paging] is on; [None] keeps
     every fault path bit-identical to the eager simulator *)
  pager : Vmem.Addr_space.pager option;
  templates : (int, Template.t) Hashtbl.t;
  mutable next_tpl : int;
  (* the "network": port -> bound/listening socket. Entries go stale
     when the socket's final close moves it to [Closed]; lookups treat
     stale entries as free and [bind] reclaims them. *)
  socks : (int, Socket.t) Hashtbl.t;
  (* tid -> absolute tick at which that thread's in-progress poll times
     out; folded into [next_timer_tick] so an all-parked machine jumps
     the clock to the nearest poll deadline like it does for alarms *)
  poll_deadlines : (Types.tid, int) Hashtbl.t;
  smp_st : smp_state option;
  (* Record-and-replay hand-off of the parallel dispatch phase: the
     per-round batch executor precomputes a whitelisted syscall's core
     (address-space clone / touch) against scratch meters and parks the
     result here, together with a thunk replaying the recorded charges
     into the real meters; [attempt] consumes it in place of running the
     core itself. Always [None] outside a dispatch_batch round. *)
  mutable fork_override :
    ((Vmem.Addr_space.t, Errno.t) result * (unit -> unit)) option;
  mutable touch_override :
    ((int, Vmem.Addr_space.fault_error) result * (unit -> unit)) option;
}

let create ?(config = default_config) () =
  if config.smp && (config.cpus < 1 || config.cpus > Vmem.Cpuset.max_cpus)
  then
    invalid_arg
      (Printf.sprintf "Kernel.create: smp cpus must be 1..%d (got %d)"
         Vmem.Cpuset.max_cpus config.cpus);
  if config.par_jobs < 1 then
    invalid_arg "Kernel.create: par_jobs must be >= 1";
  let cost = Vmem.Cost.create ?params:config.cost_params () in
  let kstat = Kstat.create () in
  if config.smp then Kstat.enable_smp kstat ~cpus:config.cpus;
  let blame = Vmem.Blame.create () in
  (* every cycle charge anywhere in the machine also lands in kstat,
     attributed to the pid set at dispatch time, and in the blame
     ledger, attributed to the active creation event (if any) *)
  Vmem.Cost.set_observer cost
    (Some
       (fun category ~n cycles ->
         Kstat.on_cost kstat category ~n cycles;
         Vmem.Blame.on_cost blame category ~n cycles));
  let frames =
    Vmem.Frame.create ~policy:config.commit_policy ~frames:config.phys_pages ()
  in
  let fault =
    match config.fault with
    | None -> None
    | Some spec ->
      let fi = Fault.create spec in
      (* the deny hooks fire inside the frame allocator, so injected
         memory-side failures hit every path that allocates — fork's COW
         clone, demand faults, image loads — not just syscall entry *)
      Vmem.Frame.set_deny_alloc frames
        (Some
           (fun () ->
             Fault.on_frame_alloc fi
             && begin
                  Kstat.on_injection kstat Fault.Frame_alloc;
                  true
                end));
      Vmem.Frame.set_deny_commit frames
        (Some
           (fun () ->
             Fault.on_commit fi
             && begin
                  Kstat.on_injection kstat Fault.Commit;
                  true
                end));
      Some fi
  in
  let pager =
    if not config.demand_paging then None
    else begin
      if config.pager_readahead < 0 then
        invalid_arg "Kernel.create: pager_readahead must be >= 0";
      (* pager pulls go through their own injection site so a schedule
         can fail the Nth fetch without perturbing frame-alloc draws *)
      let deny =
        match fault with
        | None -> fun () -> false
        | Some fi ->
          fun () ->
            Fault.on_pager_fetch fi
            && begin
                 Kstat.on_injection kstat Fault.Pager_fetch;
                 true
               end
      in
      Some (Pager.make ~frames ~deny ~readahead:config.pager_readahead ())
    end
  in
  let tlb = Vmem.Tlb.create ~cpus:config.cpus ~tracked:config.smp cost in
  if config.smp then
    (* per-CPU IPI counters ride on the shootdown charges; the cycles
       themselves arrive through the cost observer above *)
    Vmem.Tlb.set_ipi_hook tlb
      (Some
         (fun ~src ~dsts ~full ~n ->
           Kstat.on_ipi kstat ~src ~dsts:(Vmem.Cpuset.to_list dsts) ~full ~n));
  {
    config;
    frames;
    cost;
    tlb;
    vfs = Vfs.create ();
    programs = Hashtbl.create 16;
    procs = Hashtbl.create 64;
    statuses = Hashtbl.create 64;
    alarms = Hashtbl.create 8;
    next_pid = 1;
    next_tid = 1;
    ready = Queue.create ();
    parked = [];
    clock = 0;
    rng = Prng.Splitmix.create ~seed:config.seed;
    trace = Option.map (fun capacity -> Trace.create ~capacity ()) config.trace_capacity;
    kstat;
    blame;
    fault;
    pager;
    templates = Hashtbl.create 4;
    next_tpl = 1;
    socks = Hashtbl.create 8;
    poll_deadlines = Hashtbl.create 8;
    smp_st =
      (if config.smp then
         Some
           {
             ncpu = config.cpus;
             runqs = Array.init config.cpus (fun _ -> Queue.create ());
             last_as = Array.make config.cpus None;
             rr = 0;
           }
       else None);
    fork_override = None;
    touch_override = None;
  }

let config t = t.config
let register t prog = Hashtbl.replace t.programs prog.Program.name prog
let register_all t progs = List.iter (register t) progs
let find_program t name = Hashtbl.find_opt t.programs name
let cost t = t.cost
let frames t = t.frames
let vfs t = t.vfs
let tlb t = t.tlb
let console t = Buffer.contents (Vfs.console_buffer t.vfs)
let trace t = t.trace
let kstat t = t.kstat
let blame t = t.blame
let fault t = t.fault
let clock t = t.clock
let find_proc t pid = Hashtbl.find_opt t.procs pid

let procs t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun a b -> compare a.Proc.pid b.Proc.pid)

let status_of t pid = Hashtbl.find_opt t.statuses pid
let params t = Vmem.Cost.params t.cost

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let find_template t id = Hashtbl.find_opt t.templates id

let templates t =
  Hashtbl.fold (fun _ tpl acc -> tpl :: acc) t.templates []
  |> List.sort (fun a b -> compare a.Template.id b.Template.id)

(* Template lifetime: every process whose address space may map a
   template's pinned frames holds a dep on it — the zygote child, its
   fork descendants (their COW/shared clones keep mapping the same
   frames), and the frozen source itself. Deps are released exactly
   where the address space is destroyed, so discard (which un-pins and
   frees the pages) can only run once no mapping is left. *)
let acquire_tpl_deps t ids =
  List.iter
    (fun id ->
      match find_template t id with
      | Some tpl -> tpl.Template.live_deps <- tpl.Template.live_deps + 1
      | None -> ())
    ids

let release_tpl_deps t (proc : Proc.t) =
  List.iter
    (fun id ->
      match find_template t id with
      | Some tpl -> tpl.Template.live_deps <- tpl.Template.live_deps - 1
      | None -> ())
    proc.Proc.tpl_deps;
  proc.Proc.tpl_deps <- []

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid

let proc_of t (th : Proc.thread) =
  match find_proc t th.Proc.owner with
  | Some p -> p
  | None -> invalid_arg "Kernel: thread without process"

let enqueue t th =
  match t.smp_st with
  | None -> Queue.add th t.ready
  | Some s -> Queue.add th s.runqs.(th.Proc.cpu)

(* Traced events carry their CPU only on SMP machines, so single-CPU
   trace JSON (and the chrome goldens) are byte-identical to before. *)
let cpu_of t (th : Proc.thread) =
  match t.smp_st with Some _ -> Some th.Proc.cpu | None -> None

let ready_thread t th resume =
  th.Proc.entry <- Some (Proc.Resume resume);
  th.Proc.tstate <- Proc.Ready;
  enqueue t th

(* ------------------------------------------------------------------ *)
(* Image loading and address-space layout *)

let text_base = 0x0040_0000
let image_base = text_base
let stack_len = 1 lsl 20 (* 1 MiB *)
let stack_top_base = 0x7FFF_F000_0000
let mmap_base_floor = 0x7000_0000_0000
let aslr_entropy_pages = 1 lsl 20 (* 20 bits *)

let aslr_offset t =
  if t.config.aslr then
    Vmem.Addr.page_size * Prng.Splitmix.int t.rng ~bound:aslr_entropy_pages
  else 0

(* Load [prog]'s image (text, data, heap base, stack) into [aspace].
   Shared by exec, posix_spawn and Pb_start; constant in the parent's
   size — which is the whole point.

   Transactional: a failed load rolls back every segment it mapped and
   the heap base, leaving [aspace] exactly as it found it. exec and
   spawn destroy a fresh aspace on failure anyway, but Pb_start loads
   into the embryo's {e live} address space — without rollback a
   transient ENOMEM would leak the partial image (frames the parent can
   never reclaim) and make any retry fail on [`Overlap]. *)
let load_image t prog aspace =
  let p = params t in
  Vmem.Cost.charge t.cost "exec:base" p.Vmem.Cost.exec_base;
  (* With a pager each image segment becomes one run of lazy PTEs
     carrying image cookies — O(segments) instead of O(pages), the
     near-constant-time exec of the demand-paging study. [page0] numbers
     the segment's first page within the whole image so the pager can
     tell which image page a later first touch is pulling. Heap, stack
     and guard stay eager-absent: their faults are demand-zero minors
     that never need the pager. *)
  let map_segment ~base ~pages ~perm ~kind ~page0 =
    match t.pager with
    | Some _ when pages > 0 -> (
      match
        Vmem.Addr_space.map_lazy ~addr:base ~len:(pages * Vmem.Addr.page_size)
          ~perm ~kind
          ~cookie0:(Pager.image_cookie ~page:page0)
          ~stride:Pager.image_stride aspace
      with
      | Ok (_ : int) -> Ok ()
      | Error (`No_space | `Commit_limit | `Overlap | `Invalid) -> Error ())
    | Some _ | None ->
      let rec go i =
        if i >= pages then Ok ()
        else
          match
            Vmem.Addr_space.map_image_page aspace
              ~addr:(base + (i * Vmem.Addr.page_size))
              ~perm ~kind ()
          with
          | Ok () -> go (i + 1)
          | Error (`Out_of_memory | `Commit_limit | `Overlap | `Invalid) ->
            Error ()
      in
      go 0
  in
  let text_pages = Program.text_pages prog in
  let data_base = text_base + (text_pages * Vmem.Addr.page_size) in
  let data_pages = Program.data_pages prog in
  let heap_base = data_base + (data_pages * Vmem.Addr.page_size) in
  (* [munmap] ignores holes, so unmapping the whole attempted span also
     cleans up a partially mapped segment *)
  let rollback ~heap ~stack =
    (match stack with
    | Some stack_base ->
      ignore (Vmem.Addr_space.munmap aspace ~addr:stack_base ~len:stack_len)
    | None -> ());
    if heap then Vmem.Addr_space.reset_heap_base aspace;
    let image_len = (text_pages + data_pages) * Vmem.Addr.page_size in
    if image_len > 0 then
      ignore (Vmem.Addr_space.munmap aspace ~addr:text_base ~len:image_len);
    Error Errno.ENOMEM
  in
  match
    map_segment ~base:text_base ~pages:text_pages ~perm:Vmem.Perm.rx
      ~kind:(Vmem.Vma.Text { path = prog.Program.name })
      ~page0:0
  with
  | Error () -> rollback ~heap:false ~stack:None
  | Ok () -> (
    match
      map_segment ~base:data_base ~pages:data_pages ~perm:Vmem.Perm.rw
        ~kind:(Vmem.Vma.Data { path = prog.Program.name })
        ~page0:text_pages
    with
    | Error () -> rollback ~heap:false ~stack:None
    | Ok () -> (
      Vmem.Addr_space.set_heap_base aspace heap_base;
      let stack_top = stack_top_base - aslr_offset t in
      let stack_base = stack_top - stack_len in
      match
        Vmem.Addr_space.mmap ~addr:stack_base ~len:stack_len
          ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Stack aspace
      with
      | Error (`No_space | `Overlap | `Commit_limit | `Invalid) ->
        rollback ~heap:true ~stack:None
      | Ok _ -> (
        (* guard page below the stack: runaway growth faults instead of
           silently scribbling on whatever is mapped beneath *)
        match
          Vmem.Addr_space.mmap ~addr:(stack_base - Vmem.Addr.page_size)
            ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.none ~kind:Vmem.Vma.Guard
            aspace
        with
        | Error (`No_space | `Overlap | `Commit_limit | `Invalid) ->
          rollback ~heap:true ~stack:(Some stack_base)
        | Ok _ -> Ok ())))

(* Build a fresh address space holding [prog]'s image. *)
let build_image t prog =
  let mmap_base = mmap_base_floor + aslr_offset t in
  let aspace =
    Vmem.Addr_space.create ~mmap_base ~blame:t.blame ~frames:t.frames ~cost:t.cost ~tlb:t.tlb ()
  in
  Vmem.Addr_space.set_pager aspace t.pager;
  match load_image t prog aspace with
  | Ok () -> Ok aspace
  | Error e ->
    Vmem.Addr_space.destroy aspace;
    Error e

(* ------------------------------------------------------------------ *)
(* Signals and process termination *)

let rec post_signal t (proc : Proc.t) sig_ =
  if Proc.is_alive proc then begin
    if Usignal.catchable sig_ && Usignal.Set.mem sig_ proc.Proc.sigmask then
      proc.Proc.sigpending <- Usignal.Set.add sig_ proc.Proc.sigpending
    else deliver_signal t proc sig_
  end

and deliver_signal t proc sig_ =
  let disp =
    if Usignal.catchable sig_ then Proc.disposition proc sig_
    else Usignal.Default
  in
  match disp with
  | Usignal.Ignored -> ()
  | Usignal.Handler name -> Proc.count_handler_run proc name
  | Usignal.Default -> (
    match Usignal.default_action sig_ with
    | Usignal.Ignore_sig | Usignal.Stop | Usignal.Continue -> ()
    | Usignal.Terminate -> kill_process t proc (Types.Killed sig_))

and kill_process t (proc : Proc.t) status =
  if Proc.is_alive proc then begin
    proc.Proc.pstate <- Proc.Zombie status;
    Hashtbl.replace t.statuses proc.Proc.pid status;
    Hashtbl.remove t.alarms proc.Proc.pid;
    List.iter
      (fun (th : Proc.thread) ->
        th.Proc.tstate <- Proc.Exited;
        th.Proc.entry <- None;
        th.Proc.pending <- None)
      proc.Proc.threads;
    Fd_table.close_all proc.Proc.fdt;
    List.iter
      (fun (r : Vfs.regular) ->
        if r.Vfs.lock_owner = Some proc.Proc.pid then r.Vfs.lock_owner <- None)
      proc.Proc.held_locks;
    proc.Proc.held_locks <- [];
    if proc.Proc.vfork_active then proc.Proc.vfork_active <- false
    else begin
      release_tpl_deps t proc;
      Vmem.Addr_space.destroy proc.Proc.aspace
    end;
    (* orphans go to init (pid 1) *)
    let init = find_proc t 1 in
    List.iter
      (fun cpid ->
        match find_proc t cpid with
        | None -> ()
        | Some child -> (
          child.Proc.parent <- 1;
          match init with
          | Some ip when Proc.is_alive ip ->
            ip.Proc.children <- cpid :: ip.Proc.children
          | Some _ | None -> (
            (* no live init: auto-reap terminated orphans *)
            match child.Proc.pstate with
            | Proc.Zombie st -> child.Proc.pstate <- Proc.Reaped st
            | Proc.Alive | Proc.Reaped _ -> ())))
      proc.Proc.children;
    proc.Proc.children <- [];
    match find_proc t proc.Proc.parent with
    | Some parent when Proc.is_alive parent -> post_signal t parent Usignal.SIGCHLD
    | Some _ | None -> proc.Proc.pstate <- Proc.Reaped status
  end

(* ------------------------------------------------------------------ *)
(* The Demand-policy OOM killer *)

(* Victim choice when a first-touch fault cannot be backed: the largest
   resident process — biggest instant relief, the dominant term of every
   real badness heuristic — excluding the faulter (killing it would turn
   a recoverable stall into a self-inflicted crash), init, and
   vfork-paused parents (their space is on loan; killing them frees
   nothing). Ties break toward the lowest pid. *)
let oom_victim t ~faulter =
  Hashtbl.fold
    (fun pid p best ->
      if
        pid = faulter || pid = 1 || not (Proc.is_alive p)
        || p.Proc.vfork_active
      then best
      else
        let r = Vmem.Addr_space.resident_pages p.Proc.aspace in
        match best with
        | Some (_, br) when br > r -> best
        | Some (bpid, br) when br = r && bpid < pid -> best
        | _ -> Some (pid, r))
    t.procs None

(* Under [Demand] the commit-time check was waived, so the reckoning
   happens here: an un-backable touch kills a victim and retries instead
   of bouncing ENOMEM to the toucher, surfacing failure only once no
   victim is left. Other policies (and non-memory faults) pass straight
   through. *)
let rec touch_with_oom t (proc : Proc.t) ~addr ~len =
  match Vmem.Addr_space.touch_range proc.Proc.aspace ~addr ~len with
  | Error `Out_of_memory
    when Vmem.Frame.policy t.frames = Vmem.Frame.Demand -> (
    match oom_victim t ~faulter:proc.Proc.pid with
    | None -> Error `Out_of_memory
    | Some (victim_pid, _) ->
      (match find_proc t victim_pid with
      | Some victim ->
        Kstat.on_oom_kill t.kstat ~pid:victim_pid;
        kill_process t victim (Types.Killed Usignal.SIGKILL)
      | None -> ());
      touch_with_oom t proc ~addr ~len)
  | r -> r

(* ------------------------------------------------------------------ *)
(* Opening files *)

let console_flags =
  { Types.o_rdwr with Types.create = false; trunc = false }

let make_console_ofd t = Ofd.make (Ofd.Console (Vfs.console_buffer t.vfs)) ~flags:console_flags

let do_open t (proc : Proc.t) path flags =
  if flags.Types.create then
    match Vfs.create_file t.vfs ~cwd:proc.Proc.cwd path ~trunc:flags.Types.trunc with
    | Error e -> Error e
    | Ok r -> Ok (Ofd.make (Ofd.Reg_file r) ~flags)
  else
    match Vfs.resolve t.vfs ~cwd:proc.Proc.cwd path with
    | Error e -> Error e
    | Ok (Vfs.Reg r) ->
      if flags.Types.trunc && flags.Types.write then Vfs.Reg.truncate r;
      Ok (Ofd.make (Ofd.Reg_file r) ~flags)
    | Ok (Vfs.Console buf) -> Ok (Ofd.make (Ofd.Console buf) ~flags)
    | Ok (Vfs.Dir _) ->
      if flags.Types.write then Error Errno.EISDIR else Error Errno.EACCES

(* ------------------------------------------------------------------ *)
(* Process creation *)

let new_thread t proc ~is_main body =
  let th = Proc.make_thread ~tid:(fresh_tid t) ~owner:proc.Proc.pid ~is_main body in
  (* round-robin placement: deterministic, and it spreads a fork storm
     across every CPU, which is what makes the shootdown study honest *)
  (match t.smp_st with
  | Some s ->
    th.Proc.cpu <- s.rr mod s.ncpu;
    s.rr <- s.rr + 1
  | None -> ());
  proc.Proc.threads <- proc.Proc.threads @ [ th ];
  enqueue t th;
  th

let charge_fd_inherit t fdt =
  Vmem.Cost.charge t.cost "fd:inherit"
    ((params t).Vmem.Cost.fd_clone *. float_of_int (Fd_table.count fdt))

(* Shared plumbing of fork and vfork: everything except the address
   space. Implements the POSIX inheritance matrix: dispositions and mask
   copied, pending signals cleared, only the calling thread, mutex memory
   copied verbatim, alarms and file locks NOT inherited. *)
let make_forked_child t (parent : Proc.t) ~aspace ~body =
  Vmem.Cost.charge t.cost "proc:create" (params t).Vmem.Cost.proc_create;
  let fdt = Fd_table.clone parent.Proc.fdt in
  charge_fd_inherit t fdt;
  let child =
    Proc.make ~pid:(fresh_pid t) ~parent:parent.Proc.pid ~aspace ~fdt
      ~cwd:parent.Proc.cwd ~program:parent.Proc.program
  in
  Array.blit parent.Proc.sigdisp 0 child.Proc.sigdisp 0
    (Array.length parent.Proc.sigdisp);
  child.Proc.sigmask <- parent.Proc.sigmask;
  child.Proc.mutexes <- Sync.clone_table parent.Proc.mutexes;
  child.Proc.atfork <- parent.Proc.atfork;
  Hashtbl.replace t.procs child.Proc.pid child;
  parent.Proc.children <- child.Proc.pid :: parent.Proc.children;
  ignore (new_thread t child ~is_main:true body);
  child

let kernel_meters t =
  { Vmem.Addr_space.m_cost = t.cost; m_tlb = t.tlb; m_blame = Some t.blame }

let do_fork t (parent : Proc.t) ~eager body =
  let cloned =
    match t.fork_override with
    | Some (r, replay) ->
      (* the parallel phase already ran the clone against scratch
         meters; replay its recorded charges here, inside the creation
         event's Sync context, exactly where a sequential clone would
         have charged them *)
      t.fork_override <- None;
      replay ();
      (match r with
      | Ok aspace -> Vmem.Addr_space.set_meters aspace (kernel_meters t)
      | Error _ -> ());
      r
    | None -> (
      let clone =
        if eager then Vmem.Addr_space.clone_eager
        else Vmem.Addr_space.clone_cow
      in
      match clone parent.Proc.aspace with
      | Error (`Commit_limit | `Out_of_memory) -> Error Errno.ENOMEM
      | Ok aspace -> Ok aspace)
  in
  match cloned with
  | Error e -> Error e
  | Ok aspace ->
    let child = make_forked_child t parent ~aspace ~body in
    (* the child's clone keeps mapping any template pages the parent
       mapped, so it holds the same template deps *)
    child.Proc.tpl_deps <- parent.Proc.tpl_deps;
    acquire_tpl_deps t child.Proc.tpl_deps;
    Ok child.Proc.pid

let do_vfork t (parent : Proc.t) body =
  (* the child borrows the parent's address space: no copy at all *)
  let child = make_forked_child t parent ~aspace:parent.Proc.aspace ~body in
  child.Proc.vfork_active <- true;
  Ok child.Proc.pid

let apply_file_action t (child : Proc.t) action =
  match action with
  | Types.Fa_close fd -> Fd_table.close child.Proc.fdt fd
  | Types.Fa_dup2 (src, dst) ->
    if src = dst then
      (* POSIX: a spawn dup2 action with equal fds clears FD_CLOEXEC
         (unlike the dup2 syscall, which would be a no-op) *)
      Fd_table.set_cloexec child.Proc.fdt dst false
    else
      Result.map (fun (_ : Types.fd) -> ())
        (Fd_table.dup2 child.Proc.fdt ~src ~dst)
  | Types.Fa_open { fd; path; flags } -> (
    match do_open t child path flags with
    | Error e -> Error e
    | Ok ofd -> (
      (* ensure the description lands exactly at [fd] *)
      (match Fd_table.close child.Proc.fdt fd with Ok () | Error _ -> ());
      match Fd_table.alloc child.Proc.fdt ~at_least:fd ~cloexec:flags.Types.cloexec ofd with
      | Ok got when got = fd -> Ok ()
      | Ok got ->
        ignore (Fd_table.close child.Proc.fdt got);
        Error Errno.EMFILE
      | Error e ->
        Ofd.close ofd;
        Error e))

let do_spawn t (parent : Proc.t) (req : Types.spawn_req) =
  match find_program t req.Types.path with
  | None -> Error Errno.ENOENT (* reported synchronously, unlike fork+exec *)
  | Some prog -> (
    Vmem.Cost.charge t.cost "proc:create" (params t).Vmem.Cost.proc_create;
    match build_image t prog with
    | Error e -> Error e
    | Ok aspace -> (
      let fdt = Fd_table.clone parent.Proc.fdt in
      charge_fd_inherit t fdt;
      let child =
        Proc.make ~pid:(fresh_pid t) ~parent:parent.Proc.pid ~aspace ~fdt
          ~cwd:parent.Proc.cwd ~program:prog.Program.name
      in
      (* signal setup: exec semantics plus the optional wholesale reset *)
      if req.Types.attr.Types.reset_signals then
        Array.fill child.Proc.sigdisp 0 (Array.length child.Proc.sigdisp)
          Usignal.Default
      else
        List.iter
          (fun s ->
            match Proc.disposition parent s with
            | Usignal.Ignored -> Proc.set_disposition child s Usignal.Ignored
            | Usignal.Default | Usignal.Handler _ -> ())
          Usignal.all;
      child.Proc.sigmask <-
        (match req.Types.attr.Types.mask with
        | Some m -> m
        | None -> parent.Proc.sigmask);
      let rec apply = function
        | [] -> Ok ()
        | action :: rest -> (
          match apply_file_action t child action with
          | Ok () -> apply rest
          | Error e -> Error e)
      in
      match apply req.Types.file_actions with
      | Error e ->
        Fd_table.close_all child.Proc.fdt;
        Vmem.Addr_space.destroy child.Proc.aspace;
        Error e
      | Ok () ->
        Fd_table.close_cloexec child.Proc.fdt;
        Hashtbl.replace t.procs child.Proc.pid child;
        parent.Proc.children <- child.Proc.pid :: parent.Proc.children;
        ignore
          (new_thread t child ~is_main:true
             (prog.Program.main ~argv:req.Types.argv));
        Ok child.Proc.pid))

let do_exec t (proc : Proc.t) (th : Proc.thread) path argv =
  match find_program t path with
  | None -> Error Errno.ENOENT
  | Some prog -> (
    match build_image t prog with
    | Error e -> Error e
    | Ok aspace ->
      (* only the calling thread survives *)
      List.iter
        (fun (other : Proc.thread) ->
          if other.Proc.tid <> th.Proc.tid then begin
            other.Proc.tstate <- Proc.Exited;
            other.Proc.entry <- None;
            other.Proc.pending <- None
          end)
        proc.Proc.threads;
      proc.Proc.threads <- [ th ];
      if proc.Proc.vfork_active then proc.Proc.vfork_active <- false
      else begin
        release_tpl_deps t proc;
        Vmem.Addr_space.destroy proc.Proc.aspace
      end;
      proc.Proc.aspace <- aspace;
      (* caught signals reset to default; ignored stay ignored *)
      List.iter
        (fun s ->
          match Proc.disposition proc s with
          | Usignal.Handler _ -> Proc.set_disposition proc s Usignal.Default
          | Usignal.Default | Usignal.Ignored -> ())
        Usignal.all;
      Fd_table.close_cloexec proc.Proc.fdt;
      (* mutex memory and atfork registrations die with the old image *)
      proc.Proc.mutexes <- Sync.create_table ();
      proc.Proc.atfork <- [];
      proc.Proc.program <- prog.Program.name;
      Ok (prog.Program.main ~argv))

(* ------------------------------------------------------------------ *)
(* The syscall engine *)

type 'a action =
  | Reply of 'a
  | Block of string * (unit -> 'a option)
  | Die

let try_wait t (proc : Proc.t) target =
  let candidates =
    match target with
    | Types.Any_child -> proc.Proc.children
    | Types.Child pid -> if List.mem pid proc.Proc.children then [ pid ] else []
  in
  if candidates = [] then `No_children
  else begin
    let zombie =
      List.find_map
        (fun pid ->
          match find_proc t pid with
          | Some ({ Proc.pstate = Proc.Zombie st; _ } as child) ->
            Some (child, st)
          | Some _ -> None
          | None -> None)
        candidates
    in
    match zombie with
    | Some (child, st) ->
      child.Proc.pstate <- Proc.Reaped st;
      proc.Proc.children <-
        List.filter (fun p -> p <> child.Proc.pid) proc.Proc.children;
      `Got (child.Proc.pid, st)
    | None -> `Wait
  end

let find_mutex (proc : Proc.t) id = Sync.find proc.Proc.mutexes id

let regular_of_fd (proc : Proc.t) fd =
  match Fd_table.get proc.Proc.fdt fd with
  | Error e -> Error e
  | Ok ofd -> (
    match Ofd.backing ofd with
    | Ofd.Reg_file r -> Ok r
    | Ofd.Console _ | Ofd.Pipe_read _ | Ofd.Pipe_write _ | Ofd.Null
    | Ofd.Socket _ ->
      Error Errno.EINVAL)

let socket_of_fd (proc : Proc.t) fd =
  match Fd_table.get proc.Proc.fdt fd with
  | Error e -> Error e
  | Ok ofd -> (
    match Ofd.backing ofd with
    | Ofd.Socket sk -> Ok sk
    | Ofd.Reg_file _ | Ofd.Console _ | Ofd.Pipe_read _ | Ofd.Pipe_write _
    | Ofd.Null ->
      (* not a socket: EINVAL (we carry no ENOTSOCK) *)
      Error Errno.EINVAL)

(* Sockets are bidirectional and never create/truncate anything. *)
let sock_flags =
  {
    Types.read = true;
    write = true;
    append = false;
    create = false;
    trunc = false;
    cloexec = false;
  }

(* One fd's poll readiness, POSIX-flavored: POLLHUP when the read side
   is at EOF with no writers left, POLLERR when the write side has no
   readers (writes would EPIPE) — both reported regardless of the
   subscription. Regular files, console and null are always ready, like
   poll(2) on anything that isn't a pipe/socket/tty. *)
let poll_ready (i : Types.poll_interest) ofd =
  let readable p = Pipe.available p > 0 || Pipe.eof p in
  let r_in, r_out, r_hup, r_err =
    match Ofd.backing ofd with
    | Ofd.Pipe_read p -> (readable p, false, Pipe.eof p, false)
    | Ofd.Pipe_write p ->
      (false, Pipe.space p > 0 && not (Pipe.broken p), false, Pipe.broken p)
    | Ofd.Socket sk -> (
      match Socket.state sk with
      | Socket.Listening { pending; _ } ->
        (* a listener is "readable" when accept would not block *)
        (Queue.length pending > 0, false, false, false)
      | Socket.Connected { conn; role } ->
        let rp = Socket.read_pipe conn role in
        let wp = Socket.write_pipe conn role in
        ( readable rp,
          Pipe.space wp > 0 && not (Pipe.broken wp),
          Pipe.eof rp,
          Pipe.broken wp )
      | Socket.Fresh | Socket.Bound _ | Socket.Closed ->
        (false, false, false, true))
    | Ofd.Reg_file _ | Ofd.Console _ | Ofd.Null -> (true, true, false, false)
  in
  let pr_in = i.Types.pi_in && r_in in
  let pr_out = i.Types.pi_out && r_out in
  if pr_in || pr_out || r_hup || r_err then
    Some
      {
        Types.pr_fd = i.Types.pi_fd;
        pr_in;
        pr_out;
        pr_hup = r_hup;
        pr_err = r_err;
      }
  else None

let mem_errno = function
  | `Segfault -> Errno.EFAULT
  | `Perm_denied -> Errno.EACCES
  | `Out_of_memory -> Errno.ENOMEM

let write_into aspace addr data =
  let len = String.length data in
  let rec go i =
    if i >= len then Ok ()
    else
      match Vmem.Addr_space.write_byte aspace (addr + i) (Char.code data.[i]) with
      | Ok () -> go (i + 1)
      | Error e -> Error (mem_errno e)
  in
  go 0

(* An embryo is an alive child of [proc] that has no threads yet (made by
   Pb_create, not yet started). Cross-process operations may only target
   the caller's own embryos. *)
let embryo_of t (proc : Proc.t) pid =
  match find_proc t pid with
  | None -> Error Errno.ESRCH
  | Some child ->
    if not (List.mem pid proc.Proc.children) then Error Errno.EPERM
    else if not (Proc.is_alive child) then Error Errno.ESRCH
    else if child.Proc.threads <> [] then Error Errno.EINVAL
    else Ok child

(* Structured detail attached to traced events, consumed by {!Lint}:
   live thread count at fork time, cloexec state at open, fds that
   would survive an exec, fds still open at exit. *)

let count_fds (proc : Proc.t) ~surviving_exec =
  let n = ref 0 in
  Fd_table.iter proc.Proc.fdt (fun fd _ ~cloexec ->
      if fd > 2 && ((not surviving_exec) || not cloexec) then incr n);
  !n

let trace_args : type a. Proc.t -> a Sysreq.t -> (string * string) list =
 fun proc req ->
  match req with
  | Sysreq.Fork _ | Sysreq.Fork_eager _ | Sysreq.Vfork _ ->
    [ ("threads", string_of_int (List.length (Proc.live_threads proc))) ]
  | Sysreq.Open (path, flags) ->
    [ ("path", path); ("cloexec", string_of_bool flags.Types.cloexec) ]
  | Sysreq.Exec _ ->
    [ ("inherited_fds", string_of_int (count_fds proc ~surviving_exec:true)) ]
  | Sysreq.Exit _ ->
    [ ("open_fds", string_of_int (count_fds proc ~surviving_exec:false)) ]
  | Sysreq.Template_spawn { tpl; _ } -> [ ("tpl", string_of_int tpl) ]
  | Sysreq.Template_discard id -> [ ("tpl", string_of_int id) ]
  | Sysreq.Mutex_lock id | Sysreq.Mutex_unlock id | Sysreq.Mutex_trylock id ->
    [ ("mutex", string_of_int id) ]
  | Sysreq.Bind (_, port) | Sysreq.Connect (_, port) ->
    [ ("port", string_of_int port) ]
  | Sysreq.Listen { backlog; _ } -> [ ("backlog", string_of_int backlog) ]
  | Sysreq.Poll { interests; timeout } ->
    [
      ("nfds", string_of_int (List.length interests));
      ("timeout", string_of_int timeout);
    ]
  | _ -> []

(* Typed twin of [trace_args]; {!Lint} prefers this and falls back to
   the string args only for hand-built traces. *)
let trace_detail : type a. Proc.t -> a Sysreq.t -> Trace.detail =
 fun proc req ->
  match req with
  | Sysreq.Fork _ | Sysreq.Fork_eager _ | Sysreq.Vfork _ ->
    Trace.D_fork { live_threads = List.length (Proc.live_threads proc) }
  | Sysreq.Open (path, flags) ->
    Trace.D_open { path; cloexec = flags.Types.cloexec }
  | Sysreq.Exec _ ->
    Trace.D_exec { inherited_fds = count_fds proc ~surviving_exec:true }
  | Sysreq.Exit _ ->
    Trace.D_exit { open_fds = count_fds proc ~surviving_exec:false }
  | _ -> Trace.D_none

let now_ns t = Vmem.Cost.cycles_to_ns (Vmem.Cost.total t.cost)

(* A successful fork/vfork/spawn additionally records the child pid, so
   a trace replay can attribute the child's subsequent events to the
   creation style that made it. *)
let record_child t (proc : Proc.t) (th : Proc.thread) what ~style = function
  | Error _ -> ()
  | Ok child -> (
    match t.trace with
    | None -> ()
    | Some tr ->
      Trace.record tr ~tick:t.clock ~pid:proc.Proc.pid ~tid:th.Proc.tid what
        ~args:[ ("child", string_of_int child) ]
        ~detail:(Trace.D_child { child; style })
        ~ts_ns:(now_ns t) ?cpu:(cpu_of t th))

(* Blame-ledger plumbing. Every creation-shaped request allocates a
   ledger event and runs its handler under that event's Sync context:
   the setup half of the bill (page-table walk, VMA clones, PCB, fd
   table, shootdown) lands on the event immediately. The deferred half
   — COW breaks induced by the sharing it created — arrives later via
   the address spaces' blame origins (see Addr_space.set_blame_origin).
   A failed creation keeps its ledger row, flagged. *)
let creation_blame t ~style ~parent f =
  let ev = Vmem.Blame.new_event t.blame ~style ~parent in
  let r = Vmem.Blame.with_context t.blame ~id:ev Vmem.Blame.Sync f in
  (match r with
  | Ok _ -> ()
  | Error _ -> Vmem.Blame.mark_failed t.blame ev);
  (ev, r)

let stamp_child_origin t ev child =
  match find_proc t child with
  | Some c -> Vmem.Addr_space.set_blame_origin c.Proc.aspace ev
  | None -> ()

(* Process-builder operations after Pb_create keep charging the embryo's
   creation event: the builder spreads creation cost over several
   syscalls, and the ledger reassembles the total. *)
let builder_blame t pid f =
  match Vmem.Blame.event_of_child t.blame pid with
  | Some ev -> Vmem.Blame.with_context t.blame ~id:ev Vmem.Blame.Sync f
  | None -> f ()

let attempt : type a. t -> Proc.t -> Proc.thread -> a Sysreq.t -> a action =
 fun t proc th req ->
  match req with
  | Sysreq.Getpid -> Reply proc.Proc.pid
  | Sysreq.Getppid -> Reply proc.Proc.parent
  | Sysreq.Gettid -> Reply th.Proc.tid
  | Sysreq.Fork body ->
    let ev, r =
      creation_blame t ~style:"fork" ~parent:proc.Proc.pid (fun () ->
          do_fork t proc ~eager:false body)
    in
    (match r with
    | Error _ -> ()
    | Ok child ->
      Vmem.Blame.set_child t.blame ev ~child;
      (* a COW fork re-downgrades every resident private page on BOTH
         sides, so this event becomes the newest sharing origin of
         parent and child alike *)
      Vmem.Addr_space.set_blame_origin proc.Proc.aspace ev;
      stamp_child_origin t ev child);
    record_child t proc th "fork_child" ~style:"fork" r;
    Reply r
  | Sysreq.Fork_eager body ->
    let ev, r =
      creation_blame t ~style:"fork_eager" ~parent:proc.Proc.pid (fun () ->
          do_fork t proc ~eager:true body)
    in
    (* eager copies up front: no COW sharing, so no origin to stamp *)
    (match r with
    | Error _ -> ()
    | Ok child -> Vmem.Blame.set_child t.blame ev ~child);
    record_child t proc th "fork_child" ~style:"fork" r;
    Reply r
  | Sysreq.Vfork body -> (
    let ev, r =
      creation_blame t ~style:"vfork" ~parent:proc.Proc.pid (fun () ->
          do_vfork t proc body)
    in
    match r with
    | Error e -> Reply (Error e)
    | Ok child_pid ->
      Vmem.Blame.set_child t.blame ev ~child:child_pid;
      record_child t proc th "vfork_child" ~style:"vfork" (Ok child_pid);
      (* the parent thread blocks until the child execs or exits *)
      Block
        ( "vfork",
          fun () ->
            match find_proc t child_pid with
            | None -> Some (Ok child_pid)
            | Some child ->
              if child.Proc.vfork_active && Proc.is_alive child then None
              else Some (Ok child_pid) ))
  | Sysreq.Spawn req ->
    let ev, r =
      creation_blame t ~style:"spawn" ~parent:proc.Proc.pid (fun () ->
          do_spawn t proc req)
    in
    (* spawn builds a fresh image: no sharing, hence no deferred bill —
       exactly the paper's point, now visible as an empty column *)
    (match r with
    | Error _ -> ()
    | Ok child -> Vmem.Blame.set_child t.blame ev ~child);
    record_child t proc th "spawn_child" ~style:"spawn" r;
    Reply r
  | Sysreq.Exec { path; argv } -> (
    match do_exec t proc th path argv with
    | Error e -> Reply (Error e)
    | Ok body ->
      (* restart this thread at the new image's entry point *)
      th.Proc.entry <- Some (Proc.Start body);
      th.Proc.tstate <- Proc.Ready;
      enqueue t th;
      Die)
  | Sysreq.Exit code ->
    kill_process t proc (Types.Exited code);
    Die
  | Sysreq.Waitpid target -> (
    match try_wait t proc target with
    | `No_children -> Reply (Error Errno.ECHILD)
    | `Got r -> Reply (Ok r)
    | `Wait ->
      Block
        ( "waitpid",
          fun () ->
            match try_wait t proc target with
            | `Got r -> Some (Ok r)
            | `No_children -> Some (Error Errno.ECHILD)
            | `Wait -> None ))
  | Sysreq.Kill (pid, sig_) -> (
    match find_proc t pid with
    | Some target when Proc.is_alive target ->
      post_signal t target sig_;
      Reply (Ok ())
    | Some _ | None -> Reply (Error Errno.ESRCH))
  | Sysreq.Sigaction (sig_, disp) ->
    if not (Usignal.catchable sig_) then Reply (Error Errno.EINVAL)
    else begin
      let old = Proc.disposition proc sig_ in
      Proc.set_disposition proc sig_ disp;
      Reply (Ok old)
    end
  | Sysreq.Sigprocmask (op, set) ->
    let old = proc.Proc.sigmask in
    let set =
      (* SIGKILL/SIGSTOP cannot be blocked *)
      Usignal.Set.inter set Usignal.Set.full
    in
    let updated =
      match op with
      | Types.Block -> Usignal.Set.union old set
      | Types.Unblock -> Usignal.Set.diff old set
      | Types.Set_mask -> set
    in
    proc.Proc.sigmask <- updated;
    (* deliver anything newly unblocked *)
    let deliverable = Usignal.Set.diff proc.Proc.sigpending updated in
    proc.Proc.sigpending <- Usignal.Set.inter proc.Proc.sigpending updated;
    List.iter (deliver_signal t proc) (Usignal.Set.to_list deliverable);
    Reply old
  | Sysreq.Alarm ticks ->
    let remaining =
      match Hashtbl.find_opt t.alarms proc.Proc.pid with
      | Some at -> max 0 (at - t.clock)
      | None -> 0
    in
    if ticks = 0 then Hashtbl.remove t.alarms proc.Proc.pid
    else Hashtbl.replace t.alarms proc.Proc.pid (t.clock + ticks);
    Reply remaining
  | Sysreq.Open (path, flags) -> (
    match do_open t proc path flags with
    | Error e -> Reply (Error e)
    | Ok ofd -> (
      match Fd_table.alloc proc.Proc.fdt ~cloexec:flags.Types.cloexec ofd with
      | Ok fd -> Reply (Ok fd)
      | Error e ->
        Ofd.close ofd;
        Reply (Error e)))
  | Sysreq.Close fd -> Reply (Fd_table.close proc.Proc.fdt fd)
  | Sysreq.Read (fd, n) -> (
    match Fd_table.get proc.Proc.fdt fd with
    | Error e -> Reply (Error e)
    | Ok ofd -> (
      let read_once () =
        match Ofd.read ofd n with
        | Ofd.Data s -> Some (Ok s)
        | Ofd.End_of_file -> Some (Ok "")
        | Ofd.Fail e -> Some (Error e)
        | Ofd.Retry -> None
      in
      match read_once () with
      | Some r -> Reply r
      | None -> Block (Printf.sprintf "read(fd=%d)" fd, read_once)))
  | Sysreq.Write (fd, data) -> (
    match Fd_table.get proc.Proc.fdt fd with
    | Error e -> Reply (Error e)
    | Ok ofd -> (
      let write_once () =
        match Ofd.write ofd data with
        | Ofd.Wrote n -> Some (Ok n)
        | Ofd.Fail_write e -> Some (Error e)
        | Ofd.Broken_pipe ->
          post_signal t proc Usignal.SIGPIPE;
          Some (Error Errno.EPIPE)
        | Ofd.Retry_write -> None
      in
      match write_once () with
      | Some r -> Reply r
      | None -> Block (Printf.sprintf "write(fd=%d)" fd, write_once)))
  | Sysreq.Dup fd -> Reply (Fd_table.dup proc.Proc.fdt fd)
  | Sysreq.Dup2 { src; dst } -> Reply (Fd_table.dup2 proc.Proc.fdt ~src ~dst)
  | Sysreq.Set_cloexec (fd, v) -> Reply (Fd_table.set_cloexec proc.Proc.fdt fd v)
  | Sysreq.Pipe -> (
    let pipe = Pipe.create ~capacity:t.config.pipe_capacity () in
    let rofd = Ofd.make (Ofd.Pipe_read pipe) ~flags:Types.o_rdonly in
    let wofd =
      Ofd.make (Ofd.Pipe_write pipe)
        ~flags:{ Types.o_wronly with Types.create = false; trunc = false }
    in
    match Fd_table.alloc proc.Proc.fdt ~cloexec:false rofd with
    | Error e ->
      Ofd.close rofd;
      Ofd.close wofd;
      Reply (Error e)
    | Ok rfd -> (
      match Fd_table.alloc proc.Proc.fdt ~cloexec:false wofd with
      | Error e ->
        ignore (Fd_table.close proc.Proc.fdt rfd);
        Ofd.close wofd;
        Reply (Error e)
      | Ok wfd -> Reply (Ok (rfd, wfd))))
  | Sysreq.Try_lock fd -> (
    match regular_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok r -> (
      match r.Vfs.lock_owner with
      | None ->
        r.Vfs.lock_owner <- Some proc.Proc.pid;
        proc.Proc.held_locks <- r :: proc.Proc.held_locks;
        Reply (Ok ())
      | Some owner when owner = proc.Proc.pid -> Reply (Ok ())
      | Some _ -> Reply (Error Errno.EAGAIN)))
  | Sysreq.Unlock fd -> (
    match regular_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok r -> (
      match r.Vfs.lock_owner with
      | Some owner when owner = proc.Proc.pid ->
        r.Vfs.lock_owner <- None;
        proc.Proc.held_locks <-
          List.filter (fun held -> held != r) proc.Proc.held_locks;
        Reply (Ok ())
      | Some _ -> Reply (Error Errno.EPERM)
      | None -> Reply (Error Errno.EINVAL)))
  | Sysreq.Mmap { len; perm } -> (
    match
      Vmem.Addr_space.mmap ~len ~perm ~kind:Vmem.Vma.Anon proc.Proc.aspace
    with
    | Ok addr -> Reply (Ok addr)
    | Error (`No_space | `Commit_limit) -> Reply (Error Errno.ENOMEM)
    | Error (`Overlap | `Invalid) -> Reply (Error Errno.EINVAL))
  | Sysreq.Munmap { addr; len } -> (
    match Vmem.Addr_space.munmap proc.Proc.aspace ~addr ~len with
    | Ok () -> Reply (Ok ())
    | Error `Invalid -> Reply (Error Errno.EINVAL))
  | Sysreq.Brk request -> (
    match request with
    | None -> Reply (Ok (Vmem.Addr_space.brk proc.Proc.aspace))
    | Some addr -> (
      match
        Vmem.Addr_space.set_brk proc.Proc.aspace (Vmem.Addr.align_up addr)
      with
      | Ok () -> Reply (Ok (Vmem.Addr_space.brk proc.Proc.aspace))
      | Error (`Commit_limit | `Overlap) -> Reply (Error Errno.ENOMEM)
      | Error `Invalid -> Reply (Error Errno.EINVAL)))
  | Sysreq.Mem_read { addr; len } ->
    if len < 0 then Reply (Error Errno.EINVAL)
    else begin
      let buf = Bytes.create len in
      let rec go i =
        if i >= len then Reply (Ok (Bytes.to_string buf))
        else
          match Vmem.Addr_space.read_byte proc.Proc.aspace (addr + i) with
          | Ok b ->
            Bytes.set buf i (Char.chr b);
            go (i + 1)
          | Error e -> Reply (Error (mem_errno e))
      in
      go 0
    end
  | Sysreq.Mem_write { addr; data } ->
    let len = String.length data in
    let rec go i =
      if i >= len then Reply (Ok ())
      else
        match
          Vmem.Addr_space.write_byte proc.Proc.aspace (addr + i)
            (Char.code data.[i])
        with
        | Ok () -> go (i + 1)
        | Error e -> Reply (Error (mem_errno e))
    in
    go 0
  | Sysreq.Touch { addr; len } -> (
    match t.touch_override with
    | Some (r, replay) ->
      t.touch_override <- None;
      replay ();
      (match r with
      | Ok pages -> Reply (Ok pages)
      | Error e -> Reply (Error (mem_errno e)))
    | None -> (
      match touch_with_oom t proc ~addr ~len with
      | Ok pages -> Reply (Ok pages)
      | Error e -> Reply (Error (mem_errno e))))
  | Sysreq.Thread_create body ->
    let thread = new_thread t proc ~is_main:false body in
    Reply (Ok thread.Proc.tid)
  | Sysreq.Mutex_create -> Reply (Sync.create proc.Proc.mutexes).Sync.id
  | Sysreq.Mutex_lock id -> (
    match find_mutex proc id with
    | None -> Reply (Error Errno.EINVAL)
    | Some m -> (
      let take () =
        match m.Sync.state with
        | Sync.Unlocked ->
          m.Sync.state <- Sync.Locked_by th.Proc.tid;
          Some (Ok ())
        | Sync.Locked_by owner when owner = th.Proc.tid ->
          Some (Error Errno.EDEADLK)
        | Sync.Locked_by _ -> None
      in
      match take () with
      | Some r -> Reply r
      | None -> Block (Printf.sprintf "mutex_lock(%d)" id, take)))
  | Sysreq.Mutex_unlock id -> (
    match find_mutex proc id with
    | None -> Reply (Error Errno.EINVAL)
    | Some m -> (
      match m.Sync.state with
      | Sync.Locked_by owner when owner = th.Proc.tid ->
        m.Sync.state <- Sync.Unlocked;
        Reply (Ok ())
      | Sync.Locked_by _ -> Reply (Error Errno.EPERM)
      | Sync.Unlocked -> Reply (Error Errno.EINVAL)))
  | Sysreq.Mutex_trylock id -> (
    match find_mutex proc id with
    | None -> Reply (Error Errno.EINVAL)
    | Some m -> (
      match m.Sync.state with
      | Sync.Unlocked ->
        m.Sync.state <- Sync.Locked_by th.Proc.tid;
        Reply (Ok ())
      | Sync.Locked_by owner when owner = th.Proc.tid -> Reply (Ok ())
      | Sync.Locked_by _ -> Reply (Error Errno.EAGAIN)))
  | Sysreq.Mutex_reinit id -> (
    match find_mutex proc id with
    | None -> Reply (Error Errno.EINVAL)
    | Some m ->
      m.Sync.state <- Sync.Unlocked;
      Reply (Ok ()))
  | Sysreq.Yield -> Reply ()
  | Sysreq.Handled_signals name -> Reply (Proc.handler_runs proc name)
  | Sysreq.Chdir path -> (
    match Vfs.resolve t.vfs ~cwd:proc.Proc.cwd path with
    | Ok (Vfs.Dir _) ->
      proc.Proc.cwd <-
        "/" ^ String.concat "/" (Vfs.normalize ~cwd:proc.Proc.cwd path);
      Reply (Ok ())
    | Ok (Vfs.Reg _ | Vfs.Console _) -> Reply (Error Errno.ENOTDIR)
    | Error e -> Reply (Error e))
  | Sysreq.Getcwd -> Reply proc.Proc.cwd
  | Sysreq.Atfork_register handlers ->
    proc.Proc.atfork <- proc.Proc.atfork @ [ handlers ];
    Reply ()
  | Sysreq.Atfork_list -> Reply proc.Proc.atfork
  | Sysreq.Pb_create ->
    let ev, r =
      creation_blame t ~style:"builder" ~parent:proc.Proc.pid (fun () ->
          Vmem.Cost.charge t.cost "proc:create"
            (params t).Vmem.Cost.proc_create;
          let mmap_base = mmap_base_floor + aslr_offset t in
          let aspace =
            Vmem.Addr_space.create ~mmap_base ~blame:t.blame ~frames:t.frames
              ~cost:t.cost ~tlb:t.tlb ()
          in
          Vmem.Addr_space.set_pager aspace t.pager;
          let child =
            Proc.make ~pid:(fresh_pid t) ~parent:proc.Proc.pid ~aspace
              ~fdt:(Fd_table.create ~max_fds:t.config.max_fds ())
              ~cwd:proc.Proc.cwd ~program:"<embryo>"
          in
          Hashtbl.replace t.procs child.Proc.pid child;
          proc.Proc.children <- child.Proc.pid :: proc.Proc.children;
          Ok child.Proc.pid)
    in
    (match r with
    | Error (_ : Errno.t) -> ()
    | Ok child -> Vmem.Blame.set_child t.blame ev ~child);
    record_child t proc th "builder_child" ~style:"builder" r;
    Reply r
  | Sysreq.Pb_map { pid; len; perm } -> (
    match embryo_of t proc pid with
    | Error e -> Reply (Error e)
    | Ok child -> (
      match
        builder_blame t pid (fun () ->
            Vmem.Addr_space.mmap ~len ~perm ~kind:Vmem.Vma.Anon
              child.Proc.aspace)
      with
      | Ok addr -> Reply (Ok addr)
      | Error (`No_space | `Commit_limit) -> Reply (Error Errno.ENOMEM)
      | Error (`Overlap | `Invalid) -> Reply (Error Errno.EINVAL)))
  | Sysreq.Pb_write { pid; addr; data } -> (
    match embryo_of t proc pid with
    | Error e -> Reply (Error e)
    | Ok child ->
      Reply (builder_blame t pid (fun () -> write_into child.Proc.aspace addr data)))
  | Sysreq.Pb_copy_fd { pid; src; dst } -> (
    match embryo_of t proc pid with
    | Error e -> Reply (Error e)
    | Ok child -> (
      match Fd_table.get proc.Proc.fdt src with
      | Error e -> Reply (Error e)
      | Ok ofd -> (
        builder_blame t pid (fun () ->
            Vmem.Cost.charge t.cost "fd:inherit" (params t).Vmem.Cost.fd_clone);
        Ofd.incref ofd;
        match Fd_table.alloc child.Proc.fdt ~at_least:dst ~cloexec:false ofd with
        | Ok got when got = dst -> Reply (Ok ())
        | Ok got ->
          ignore (Fd_table.close child.Proc.fdt got);
          Reply (Error Errno.EINVAL)
        | Error e ->
          Ofd.close ofd;
          Reply (Error e))))
  | Sysreq.Pb_start { pid; path; argv } -> (
    match embryo_of t proc pid with
    | Error e -> Reply (Error e)
    | Ok child -> (
      match find_program t path with
      | None -> Reply (Error Errno.ENOENT)
      | Some prog -> (
        match
          builder_blame t pid (fun () ->
              load_image t prog child.Proc.aspace)
        with
        | Error e -> Reply (Error e)
        | Ok () ->
          child.Proc.program <- prog.Program.name;
          ignore
            (new_thread t child ~is_main:true (prog.Program.main ~argv));
          Reply (Ok ()))))
  | Sysreq.Stdio_flushed { bytes; inherited } ->
    Kstat.on_stdio_flush t.kstat ~bytes ~inherited;
    Reply ()
  | Sysreq.Template_freeze { pid } -> (
    let target =
      match pid with
      | None -> Ok proc
      | Some p -> (
        match find_proc t p with
        | Some tp when Proc.is_alive tp ->
          if List.mem p proc.Proc.children then Ok tp
          else Error Errno.EPERM (* only the parent may freeze a child *)
        | Some _ | None -> Error Errno.ESRCH)
    in
    match target with
    | Error e -> Reply (Error e)
    | Ok target ->
      if target.Proc.vfork_active then
        (* a borrowed address space is not this process's to seal *)
        Reply (Error Errno.EINVAL)
      else if not (Vmem.Addr_space.sole_owner target.Proc.aspace) then
        (* a COW sharer or an earlier template still holds frames of
           this image: pinning them would steal pages someone else
           counts on *)
        Reply (Error Errno.EBUSY)
      else if Vmem.Addr_space.pager_active target.Proc.aspace then
        (* unresolved pager-backed pages: sealing now would snapshot
           holes. Warm the image (touch it) and retry *)
        Reply (Error Errno.EAGAIN)
      else begin
        let ev, r =
          creation_blame t ~style:"freeze" ~parent:proc.Proc.pid (fun () ->
              let commit_pages =
                Vmem.Addr_space.committed_pages target.Proc.aspace
              in
              let aspace = Vmem.Addr_space.seal target.Proc.aspace in
              let fdt = Fd_table.clone target.Proc.fdt in
              charge_fd_inherit t fdt;
              let id = t.next_tpl in
              t.next_tpl <- id + 1;
              let tpl =
                Template.make ~id ~aspace ~commit_pages ~fdt
                  ~program:target.Proc.program ~cwd:target.Proc.cwd
                  ~sigdisp:(Array.copy target.Proc.sigdisp)
                  ~sigmask:target.Proc.sigmask ~source:target.Proc.pid
                  ~resident:(Vmem.Addr_space.resident_pages aspace)
              in
              Hashtbl.replace t.templates id tpl;
              (* the source keeps mapping the pinned frames until its own
                 address space dies *)
              target.Proc.tpl_deps <- id :: target.Proc.tpl_deps;
              tpl.Template.live_deps <- 1;
              Kstat.on_template_freeze t.kstat;
              Ok id)
        in
        (match r with
        | Error (_ : Errno.t) -> ()
        | Ok id ->
          Vmem.Blame.set_tag t.blame ev (Printf.sprintf "tpl:%d" id);
          (* the freeze downgraded the source's writable pages to COW
             against the pinned template frames: its later writes are
             this event's deferred bill *)
          Vmem.Addr_space.set_blame_origin target.Proc.aspace ev);
        Reply r
      end)
  | Sysreq.Template_spawn { tpl; body } -> (
    match find_template t tpl with
    | None -> Reply (Error Errno.EINVAL)
    | Some template -> (
      let ev, r =
        creation_blame t ~style:"zygote" ~parent:proc.Proc.pid (fun () ->
            (* the commit charge is the only fallible step and runs
               first, so a failed spawn leaves template and machine
               untouched *)
            match
              Vmem.Addr_space.clone_from_sealed
                ~lazy_:t.config.demand_paging template.Template.aspace
                ~commit_pages:template.Template.commit_pages
            with
            | Error `Commit_limit -> Error Errno.ENOMEM
            | Ok (aspace, subtrees) ->
              Vmem.Cost.charge t.cost "proc:create"
                (params t).Vmem.Cost.proc_create;
              let fdt = Fd_table.clone template.Template.fdt in
              charge_fd_inherit t fdt;
              let child =
                Proc.make ~pid:(fresh_pid t) ~parent:proc.Proc.pid ~aspace
                  ~fdt ~cwd:template.Template.cwd
                  ~program:template.Template.program
              in
              Array.blit template.Template.sigdisp 0 child.Proc.sigdisp 0
                (Array.length template.Template.sigdisp);
              child.Proc.sigmask <- template.Template.sigmask;
              child.Proc.tpl_deps <- [ template.Template.id ];
              template.Template.live_deps <- template.Template.live_deps + 1;
              template.Template.spawns <- template.Template.spawns + 1;
              Hashtbl.replace t.procs child.Proc.pid child;
              proc.Proc.children <- child.Proc.pid :: proc.Proc.children;
              ignore (new_thread t child ~is_main:true body);
              Kstat.on_template_spawn t.kstat ~subtrees
                ~pages:template.Template.resident;
              Ok child.Proc.pid)
      in
      match r with
      | Error e -> Reply (Error e)
      | Ok child ->
        Vmem.Blame.set_child t.blame ev ~child;
        Vmem.Blame.set_tag t.blame ev
          (Printf.sprintf "tpl:%d" template.Template.id);
        (* the child's writes COW away from the pinned template frames:
           charge those breaks to this spawn *)
        stamp_child_origin t ev child;
        record_child t proc th "zygote_child" ~style:"zygote" (Ok child);
        Reply (Ok child)))
  | Sysreq.Template_discard id -> (
    match find_template t id with
    | None -> Reply (Error Errno.EINVAL)
    | Some template ->
      if template.Template.live_deps > 0 then Reply (Error Errno.EBUSY)
      else begin
        Hashtbl.remove t.templates id;
        Template.destroy template;
        Reply (Ok ())
      end)
  | Sysreq.Socket -> (
    let ofd = Ofd.make (Ofd.Socket (Socket.create ())) ~flags:sock_flags in
    match Fd_table.alloc proc.Proc.fdt ~cloexec:false ofd with
    | Ok fd -> Reply (Ok fd)
    | Error e ->
      Ofd.close ofd;
      Reply (Error e))
  | Sysreq.Bind (fd, port) -> (
    match socket_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok sk -> (
      match Hashtbl.find_opt t.socks port with
      | Some holder when Socket.state holder <> Socket.Closed ->
        Reply (Error Errno.EADDRINUSE)
      | Some _ | None -> (
        match Socket.bind sk port with
        | Ok () ->
          Hashtbl.replace t.socks port sk;
          Reply (Ok ())
        | Error e -> Reply (Error e))))
  | Sysreq.Listen { fd; backlog } -> (
    match socket_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok sk -> Reply (Socket.listen sk backlog))
  | Sysreq.Accept fd -> (
    match socket_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok sk -> (
      match Socket.state sk with
      | Socket.Fresh | Socket.Bound _ | Socket.Connected _ | Socket.Closed
        ->
        Reply (Error Errno.EINVAL)
      | Socket.Listening _ -> (
        (* re-polled while parked; several accepters may park on one
           listener (the per-worker accept idiom) and the longest-parked
           one wins each connection, deterministically *)
        let accept_once () =
          match Socket.accept sk with
          | Some conn_sk -> (
            let ofd = Ofd.make (Ofd.Socket conn_sk) ~flags:sock_flags in
            match Fd_table.alloc proc.Proc.fdt ~cloexec:false ofd with
            | Ok newfd ->
              Kstat.on_accept t.kstat ~pid:proc.Proc.pid;
              Some (Ok newfd)
            | Error e ->
              (* releases the adopted server endpoint: the client sees
                 EOF/EPIPE, not a connection leak *)
              Ofd.close ofd;
              Some (Error e))
          | None -> (
            match Socket.state sk with
            | Socket.Listening _ -> None
            | Socket.Fresh | Socket.Bound _ | Socket.Connected _
            | Socket.Closed ->
              (* listener closed while we were parked *)
              Some (Error Errno.EINVAL))
        in
        match accept_once () with
        | Some r -> Reply r
        | None -> Block (Printf.sprintf "accept(fd=%d)" fd, accept_once))))
  | Sysreq.Connect (fd, port) -> (
    match socket_of_fd proc fd with
    | Error e -> Reply (Error e)
    | Ok sk -> (
      match Hashtbl.find_opt t.socks port with
      | (Some _ | None) when Socket.state sk <> Socket.Fresh ->
        Reply (Error Errno.EINVAL)
      | Some srv when Socket.state srv <> Socket.Closed -> (
        let r = Socket.connect sk ~srv in
        Kstat.on_connect t.kstat
          ~refused:(r = Error Errno.ECONNREFUSED);
        match r with
        | Ok () ->
          (match Socket.backlog_depth srv with
          | Some depth -> Kstat.on_accept_queue t.kstat ~depth
          | None -> ());
          Reply (Ok ())
        | Error e -> Reply (Error e))
      | Some _ | None ->
        (* nobody (alive) listens on that port *)
        Kstat.on_connect t.kstat ~refused:true;
        Reply (Error Errno.ECONNREFUSED)))
  | Sysreq.Poll { interests; timeout } -> (
    let rec lookup acc = function
      | [] -> Ok (List.rev acc)
      | i :: rest -> (
        match Fd_table.get proc.Proc.fdt i.Types.pi_fd with
        | Error e -> Error e
        | Ok ofd -> lookup ((i, ofd) :: acc) rest)
    in
    match lookup [] interests with
    | Error e -> Reply (Error e)
    | Ok pairs ->
      let scan () = List.filter_map (fun (i, ofd) -> poll_ready i ofd) pairs in
      let ready = scan () in
      if ready <> [] || timeout = 0 then begin
        (* timeout=0 is the non-blocking probe: report current readiness
           (possibly []) without parking *)
        Kstat.on_poll_wake t.kstat ~pid:proc.Proc.pid
          ~timed_out:(ready = []);
        Reply (Ok ready)
      end
      else begin
        let deadline =
          if timeout < 0 then None else Some (t.clock + timeout)
        in
        (match deadline with
        | Some d -> Hashtbl.replace t.poll_deadlines th.Proc.tid d
        | None -> ());
        let check () =
          let ready = scan () in
          if ready <> [] then begin
            Hashtbl.remove t.poll_deadlines th.Proc.tid;
            Kstat.on_poll_wake t.kstat ~pid:proc.Proc.pid ~timed_out:false;
            Some (Ok ready)
          end
          else
            match deadline with
            | Some d when t.clock >= d ->
              Hashtbl.remove t.poll_deadlines th.Proc.tid;
              Kstat.on_poll_wake t.kstat ~pid:proc.Proc.pid ~timed_out:true;
              Some (Ok [])
            | Some _ | None -> None
        in
        Block (Printf.sprintf "poll(n=%d)" (List.length interests), check)
      end)

let is_memory_op : type a. a Sysreq.t -> bool = function
  | Sysreq.Mem_read _ | Sysreq.Mem_write _ | Sysreq.Touch _ -> true
  | _ -> false

(* Pure accounting requests: invisible to the cost model, the trace and
   the syscall counters, so instrumented programs measure identically. *)
let is_accounting_op : type a. a Sysreq.t -> bool = function
  | Sysreq.Stdio_flushed _ -> true
  | _ -> false

let charge_syscall t req =
  if not (is_memory_op req || is_accounting_op req) then
    Vmem.Cost.charge t.cost "syscall" (params t).Vmem.Cost.syscall_base

(* Errno-level result of a completed request, for the trace's typed End
   events. [None] for requests whose replies cannot fail. *)
let outcome_of : type a. a Sysreq.t -> a -> Trace.outcome option =
 fun req v ->
  let of_result : type x. (x, Errno.t) result -> Trace.outcome option =
    function
    | Ok _ -> Some Trace.Ok_result
    | Error e -> Some (Trace.Err e)
  in
  match req with
  | Sysreq.Fork _ -> of_result v
  | Sysreq.Fork_eager _ -> of_result v
  | Sysreq.Vfork _ -> of_result v
  | Sysreq.Spawn _ -> of_result v
  | Sysreq.Exec _ -> of_result v
  | Sysreq.Waitpid _ -> of_result v
  | Sysreq.Kill _ -> of_result v
  | Sysreq.Sigaction _ -> of_result v
  | Sysreq.Open _ -> of_result v
  | Sysreq.Close _ -> of_result v
  | Sysreq.Read _ -> of_result v
  | Sysreq.Write _ -> of_result v
  | Sysreq.Dup _ -> of_result v
  | Sysreq.Dup2 _ -> of_result v
  | Sysreq.Set_cloexec _ -> of_result v
  | Sysreq.Pipe -> of_result v
  | Sysreq.Try_lock _ -> of_result v
  | Sysreq.Unlock _ -> of_result v
  | Sysreq.Mmap _ -> of_result v
  | Sysreq.Munmap _ -> of_result v
  | Sysreq.Brk _ -> of_result v
  | Sysreq.Mem_read _ -> of_result v
  | Sysreq.Mem_write _ -> of_result v
  | Sysreq.Touch _ -> of_result v
  | Sysreq.Thread_create _ -> of_result v
  | Sysreq.Mutex_lock _ -> of_result v
  | Sysreq.Mutex_unlock _ -> of_result v
  | Sysreq.Mutex_trylock _ -> of_result v
  | Sysreq.Mutex_reinit _ -> of_result v
  | Sysreq.Chdir _ -> of_result v
  | Sysreq.Pb_create -> of_result v
  | Sysreq.Pb_map _ -> of_result v
  | Sysreq.Pb_write _ -> of_result v
  | Sysreq.Pb_copy_fd _ -> of_result v
  | Sysreq.Pb_start _ -> of_result v
  | Sysreq.Template_freeze _ -> of_result v
  | Sysreq.Template_spawn _ -> of_result v
  | Sysreq.Template_discard _ -> of_result v
  | Sysreq.Socket -> of_result v
  | Sysreq.Bind _ -> of_result v
  | Sysreq.Listen _ -> of_result v
  | Sysreq.Accept _ -> of_result v
  | Sysreq.Connect _ -> of_result v
  | Sysreq.Poll _ -> of_result v
  | Sysreq.Getpid -> None
  | Sysreq.Getppid -> None
  | Sysreq.Gettid -> None
  | Sysreq.Exit _ -> None
  | Sysreq.Sigprocmask _ -> None
  | Sysreq.Alarm _ -> None
  | Sysreq.Mutex_create -> None
  | Sysreq.Yield -> None
  | Sysreq.Handled_signals _ -> None
  | Sysreq.Getcwd -> None
  | Sysreq.Atfork_register _ -> None
  | Sysreq.Atfork_list -> None
  | Sysreq.Stdio_flushed _ -> None

(* How to build an injected-error reply for a request, or [None] when
   the reply type cannot carry an errno (those are never injected). *)
let injectable_errno : type a. a Sysreq.t -> (Errno.t -> a) option =
 fun req ->
  let err : type x. Errno.t -> (x, Errno.t) result = fun e -> Error e in
  match req with
  | Sysreq.Fork _ -> Some err
  | Sysreq.Fork_eager _ -> Some err
  | Sysreq.Vfork _ -> Some err
  | Sysreq.Spawn _ -> Some err
  | Sysreq.Exec _ -> Some err
  | Sysreq.Waitpid _ -> Some err
  | Sysreq.Kill _ -> Some err
  | Sysreq.Sigaction _ -> Some err
  | Sysreq.Open _ -> Some err
  | Sysreq.Close _ -> Some err
  | Sysreq.Read _ -> Some err
  | Sysreq.Write _ -> Some err
  | Sysreq.Dup _ -> Some err
  | Sysreq.Dup2 _ -> Some err
  | Sysreq.Set_cloexec _ -> Some err
  | Sysreq.Pipe -> Some err
  | Sysreq.Try_lock _ -> Some err
  | Sysreq.Unlock _ -> Some err
  | Sysreq.Mmap _ -> Some err
  | Sysreq.Munmap _ -> Some err
  | Sysreq.Brk _ -> Some err
  | Sysreq.Mem_read _ -> Some err
  | Sysreq.Mem_write _ -> Some err
  | Sysreq.Touch _ -> Some err
  | Sysreq.Thread_create _ -> Some err
  | Sysreq.Mutex_lock _ -> Some err
  | Sysreq.Mutex_unlock _ -> Some err
  | Sysreq.Mutex_trylock _ -> Some err
  | Sysreq.Mutex_reinit _ -> Some err
  | Sysreq.Chdir _ -> Some err
  | Sysreq.Pb_create -> Some err
  | Sysreq.Pb_map _ -> Some err
  | Sysreq.Pb_write _ -> Some err
  | Sysreq.Pb_copy_fd _ -> Some err
  | Sysreq.Pb_start _ -> Some err
  | Sysreq.Template_freeze _ -> Some err
  | Sysreq.Template_spawn _ -> Some err
  | Sysreq.Template_discard _ -> Some err
  | Sysreq.Socket -> Some err
  | Sysreq.Bind _ -> Some err
  | Sysreq.Listen _ -> Some err
  | Sysreq.Accept _ -> Some err
  | Sysreq.Connect _ -> Some err
  | Sysreq.Poll _ -> Some err
  | Sysreq.Getpid -> None
  | Sysreq.Getppid -> None
  | Sysreq.Gettid -> None
  | Sysreq.Exit _ -> None
  | Sysreq.Sigprocmask _ -> None
  | Sysreq.Alarm _ -> None
  | Sysreq.Mutex_create -> None
  | Sysreq.Yield -> None
  | Sysreq.Handled_signals _ -> None
  | Sysreq.Getcwd -> None
  | Sysreq.Atfork_register _ -> None
  | Sysreq.Atfork_list -> None
  | Sysreq.Stdio_flushed _ -> None

(* Consult the fault schedule at dispatch: for a fallible request, an
   armed trigger replaces the whole syscall with an [Error e] reply —
   the handler never runs, so there is nothing to roll back. *)
let inject_syscall : type a. t -> a Sysreq.t -> (a * Errno.t) option =
 fun t req ->
  match t.fault with
  | None -> None
  | Some fi -> (
    match injectable_errno req with
    | None -> None
    | Some err -> (
      match Fault.on_syscall fi ~kind:(Sysreq.name req) with
      | None -> None
      | Some e ->
        Kstat.on_injection t.kstat Fault.Syscall;
        Some (err e, e)))

(* Frame-alloc / commit injections that fired while a handler ran, as
   extra span args — (site, count) deltas over the whole attempt. *)
let injection_marks t before =
  match (t.fault, before) with
  | Some fi, (a0, c0) ->
    let mark name n0 n1 acc =
      if n1 > n0 then (name, string_of_int (n1 - n0)) :: acc else acc
    in
    mark "injected_frame_allocs" a0 (Fault.injected fi Fault.Frame_alloc)
      (mark "injected_commits" c0 (Fault.injected fi Fault.Commit) [])
  | None, _ -> []

let injection_counts t =
  match t.fault with
  | Some fi -> (Fault.injected fi Fault.Frame_alloc, Fault.injected fi Fault.Commit)
  | None -> (0, 0)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let handler t (th : Proc.thread) : (unit, unit) Effect.Deep.handler =
  ignore t;
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sysreq.Sys req ->
          Some
            (fun (k : (a, _) Effect.Deep.continuation) ->
              th.Proc.pending <- Some (Proc.Pending (req, k)))
        | _ -> None);
  }

let park t th why check k ~req ~entry_cycles ~targs ~tdetail =
  th.Proc.tstate <- Proc.Blocked why;
  t.parked <-
    t.parked
    @ [ Parked { th; why; check; k; req; entry_cycles; targs; tdetail } ]

let record_begin t proc (th : Proc.thread) req ~args ~detail =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record tr ~tick:t.clock ~pid:proc.Proc.pid ~tid:th.Proc.tid
      (Sysreq.name req) ~phase:Trace.Begin ~args ~detail ~ts_ns:(now_ns t)
      ?cpu:(cpu_of t th)

(* End events repeat the Begin's args/detail so consumers that filter by
   name (not phase) still see every annotation. *)
let record_end t ~pid ~tid ~cpu req ~entry_cycles ~args ~detail outcome =
  match t.trace with
  | None -> ()
  | Some tr ->
    let now = Vmem.Cost.total t.cost in
    Trace.record tr ~tick:t.clock ~pid ~tid (Sysreq.name req)
      ~phase:Trace.End ~args ~detail
      ~ts_ns:(Vmem.Cost.cycles_to_ns now)
      ~span_ns:(Vmem.Cost.cycles_to_ns (now -. entry_cycles))
      ?outcome ?cpu

let dispatch t (th : Proc.thread) (Proc.Pending (req, k)) =
  let proc = proc_of t th in
  Kstat.set_current t.kstat (Some proc.Proc.pid);
  let meta = is_accounting_op req in
  let targs = if meta then [] else trace_args proc req in
  let tdetail = if meta then Trace.D_none else trace_detail proc req in
  let entry_cycles = Vmem.Cost.total t.cost in
  if not meta then begin
    record_begin t proc th req ~args:targs ~detail:tdetail;
    Kstat.on_syscall t.kstat (Sysreq.name req);
    charge_syscall t req
  end;
  match if meta then None else inject_syscall t req with
  | Some (v, e) ->
    record_end t ~pid:proc.Proc.pid ~tid:th.Proc.tid ~cpu:(cpu_of t th) req
      ~entry_cycles
      ~args:(("injected", Errno.to_string e) :: targs)
      ~detail:tdetail (outcome_of req v);
    ready_thread t th (fun () -> Effect.Deep.continue k v)
  | None -> (
    let inj0 = injection_counts t in
    match attempt t proc th req with
    | Reply v ->
      if not meta then
        record_end t ~pid:proc.Proc.pid ~tid:th.Proc.tid ~cpu:(cpu_of t th)
          req ~entry_cycles
          ~args:(injection_marks t inj0 @ targs)
          ~detail:tdetail (outcome_of req v);
      if th.Proc.tstate = Proc.Exited then ()
      else ready_thread t th (fun () -> Effect.Deep.continue k v)
    | Block (why, check) ->
      park t th why check k ~req ~entry_cycles ~targs ~tdetail
    | Die ->
      (* Exec restarting the thread, or Exit: the request succeeded *)
      if not meta then
        record_end t ~pid:proc.Proc.pid ~tid:th.Proc.tid ~cpu:(cpu_of t th)
          req ~entry_cycles ~args:targs ~detail:tdetail
          (Some Trace.Ok_result))

let thread_returned t (th : Proc.thread) =
  let proc = proc_of t th in
  th.Proc.tstate <- Proc.Exited;
  th.Proc.entry <- None;
  if not (Proc.is_alive proc) then ()
  else if th.Proc.is_main || Proc.live_threads proc = [] then
    (* main returning, or the last thread gone, ends the process *)
    kill_process t proc (Types.Exited 0)

let step t (th : Proc.thread) =
  th.Proc.tstate <- Proc.Running;
  (match th.Proc.entry with
  | Some (Proc.Start f) ->
    th.Proc.entry <- None;
    Effect.Deep.match_with f () (handler t th)
  | Some (Proc.Resume r) ->
    th.Proc.entry <- None;
    r ()
  | None -> invalid_arg "Kernel.step: thread with nothing to run");
  match th.Proc.pending with
  | Some p ->
    th.Proc.pending <- None;
    dispatch t th p
  | None -> if th.Proc.tstate = Proc.Running then thread_returned t th

let retry_parked t =
  let entries = t.parked in
  t.parked <- [];
  let kept =
    List.filter
      (fun (Parked { th; check; k; req; entry_cycles; targs; tdetail; _ }) ->
        if th.Proc.tstate = Proc.Exited then begin
          (* a thread that died mid-poll must not leave a stale deadline
             behind (it would make an all-parked machine jump the clock
             to a tick nobody is waiting for) *)
          Hashtbl.remove t.poll_deadlines th.Proc.tid;
          false
        end
        else
          match check () with
          | Some v ->
            if th.Proc.tstate <> Proc.Exited then begin
              record_end t ~pid:th.Proc.owner ~tid:th.Proc.tid
                ~cpu:(cpu_of t th) req ~entry_cycles ~args:targs
                ~detail:tdetail (outcome_of req v);
              ready_thread t th (fun () -> Effect.Deep.continue k v)
            end;
            false
          | None -> true)
      entries
  in
  t.parked <- t.parked @ kept

let next_ready t =
  (match t.config.sched with
  | `Fifo -> ()
  | `Random ->
    (* rotate a random prefix so the pop is uniform-ish but deterministic *)
    let n = Queue.length t.ready in
    if n > 1 then
      for _ = 1 to Prng.Splitmix.int t.rng ~bound:n do
        Queue.add (Queue.pop t.ready) t.ready
      done);
  let rec pop () =
    match Queue.take_opt t.ready with
    | None -> None
    | Some th when th.Proc.tstate = Proc.Exited -> pop ()
    | Some th -> Some th
  in
  pop ()

let check_alarms t =
  let due =
    Hashtbl.fold
      (fun pid at acc -> if at <= t.clock then pid :: acc else acc)
      t.alarms []
  in
  List.iter
    (fun pid ->
      Hashtbl.remove t.alarms pid;
      match find_proc t pid with
      | Some proc when Proc.is_alive proc -> post_signal t proc Usignal.SIGALRM
      | Some _ | None -> ())
    due

let next_alarm_tick t =
  Hashtbl.fold
    (fun _ at acc ->
      match acc with None -> Some at | Some best -> Some (min best at))
    t.alarms None

(* The nearest tick at which time itself unblocks someone: an armed
   alarm or a parked poll's timeout. Both run loops jump the clock here
   when every thread is parked. *)
let next_timer_tick t =
  Hashtbl.fold
    (fun _ at acc ->
      match acc with None -> Some at | Some best -> Some (min best at))
    t.poll_deadlines (next_alarm_tick t)

let describe_stalls t =
  List.map
    (fun (Parked { th; why; _ }) ->
      { pid = th.Proc.owner; tid = th.Proc.tid; why })
    t.parked

(* ------------------------------------------------------------------ *)
(* SMP scheduling *)

let pop_runq t q =
  (match t.config.sched with
  | `Fifo -> ()
  | `Random ->
    (* same rotate-a-random-prefix trick as the single-CPU queue *)
    let n = Queue.length q in
    if n > 1 then
      for _ = 1 to Prng.Splitmix.int t.rng ~bound:n do
        Queue.add (Queue.pop q) q
      done);
  let rec pop () =
    match Queue.take_opt q with
    | None -> None
    | Some th when th.Proc.tstate = Proc.Exited -> pop ()
    | Some th -> Some th
  in
  pop ()

(* Steal from the longest remote queue still holding at least two
   entries (always leave the victim its own next slice); ties break to
   the lowest CPU index, keeping the policy deterministic. *)
let steal t s ~thief =
  let best = ref None in
  for cpu = 0 to s.ncpu - 1 do
    if cpu <> thief then begin
      let n = Queue.length s.runqs.(cpu) in
      if n >= 2 then
        match !best with
        | Some (_, bn) when bn >= n -> ()
        | Some _ | None -> best := Some (cpu, n)
    end
  done;
  match !best with
  | None -> None
  | Some (victim, _) -> (
    match pop_runq t s.runqs.(victim) with
    | None -> None
    | Some th ->
      th.Proc.cpu <- thief;
      Kstat.set_current t.kstat None;
      Kstat.on_steal t.kstat ~cpu:thief;
      Kstat.on_migration t.kstat ~cpu:thief;
      Some th)

(* One scheduling round: at most one thread slice per CPU, own queue
   first, then work stealing. *)
let pick_batch t s =
  let batch = ref [] in
  for cpu = 0 to s.ncpu - 1 do
    match
      match pop_runq t s.runqs.(cpu) with
      | Some th -> Some th
      | None -> steal t s ~thief:cpu
    with
    | Some th -> batch := (cpu, th) :: !batch
    | None -> ()
  done;
  List.rev !batch

(* Phase A of a round: charge the context switch, note the CPU in the
   space's mask, and run the thread until it performs a syscall (sets
   [pending]) or returns. Dispatch is deferred to phase B so eligible
   syscall cores of one round can execute concurrently. *)
let run_slice t s (cpu, (th : Proc.thread)) =
  t.clock <- t.clock + 1;
  Vmem.Tlb.set_active t.tlb cpu;
  let asp = (proc_of t th).Proc.aspace in
  (match s.last_as.(cpu) with
  | Some prev when prev == asp -> ()
  | Some _ | None ->
    s.last_as.(cpu) <- Some asp;
    Vmem.Tlb.flush_local t.tlb);
  (* unconditionally, not just on switch: a shootdown collapses the mask
     to its sender, and a still-running remote CPU re-caches the space
     the moment it runs again *)
  Vmem.Addr_space.note_cpu asp ~cpu;
  th.Proc.tstate <- Proc.Running;
  match th.Proc.entry with
  | Some (Proc.Start f) ->
    th.Proc.entry <- None;
    Effect.Deep.match_with f () (handler t th)
  | Some (Proc.Resume r) ->
    th.Proc.entry <- None;
    r ()
  | None -> invalid_arg "Kernel.run: scheduled thread with nothing to run"

(* Syscalls whose heavy core — the address-space walk — may run on a
   worker domain: it touches only the caller's own space, that space's
   COW family, and the (mutex-protected) frame allocator. *)
type par_core =
  | Core_fork of { eager : bool }
  | Core_touch of { addr : int; len : int }

let core_of_pending (Proc.Pending (req, _)) =
  match req with
  | Sysreq.Fork _ -> Some (Core_fork { eager = false })
  | Sysreq.Fork_eager _ -> Some (Core_fork { eager = true })
  | Sysreq.Touch { addr; len } -> Some (Core_touch { addr; len })
  | _ -> None

(* Requests that reach into a *different* process's address space
   (embryo builders, template freeze/spawn): a round holding one runs
   fully sequentially, because the family-disjointness check below only
   covers each pending's own space. *)
let crosses_aspaces (Proc.Pending (req, _)) =
  match req with
  | Sysreq.Pb_create | Sysreq.Pb_map _ | Sysreq.Pb_write _
  | Sysreq.Pb_copy_fd _ | Sysreq.Pb_start _ | Sysreq.Template_freeze _
  | Sysreq.Template_spawn _ ->
    true
  | _ -> false

(* An ordered log of everything a core charged against its scratch
   meters, replayed verbatim into the real meters at dispatch time. *)
type scratch_entry =
  | S_charge of (int * Vmem.Blame.kind) option * string * int * float
  | S_ipi of int * int list * bool * int

type par_task = {
  pt_cpu : int;
  pt_asp : Vmem.Addr_space.t;
  pt_core : par_core;
  pt_log : scratch_entry list ref;
  mutable pt_fork : (Vmem.Addr_space.t, Errno.t) result option;
  mutable pt_touch : (int, Vmem.Addr_space.fault_error) result option;
}

let prepare_task t s (cpu, th) core =
  let asp = (proc_of t th).Proc.aspace in
  let log = ref [] in
  let sc_cost = Vmem.Cost.create ~params:(params t) () in
  let sc_blame = Vmem.Blame.create () in
  let sc_tlb = Vmem.Tlb.create ~cpus:s.ncpu ~tracked:true sc_cost in
  Vmem.Tlb.set_active sc_tlb cpu;
  Vmem.Cost.set_observer sc_cost
    (Some
       (fun cat ~n cycles ->
         log :=
           S_charge (Vmem.Blame.context sc_blame, cat, n, cycles) :: !log));
  Vmem.Tlb.set_ipi_hook sc_tlb
    (Some
       (fun ~src ~dsts ~full ~n ->
         log := S_ipi (src, Vmem.Cpuset.to_list dsts, full, n) :: !log));
  Vmem.Addr_space.set_meters asp
    {
      Vmem.Addr_space.m_cost = sc_cost;
      m_tlb = sc_tlb;
      m_blame = Some sc_blame;
    };
  { pt_cpu = cpu; pt_asp = asp; pt_core = core; pt_log = log;
    pt_fork = None; pt_touch = None }

let run_core task =
  match task.pt_core with
  | Core_fork { eager } ->
    let clone =
      if eager then Vmem.Addr_space.clone_eager else Vmem.Addr_space.clone_cow
    in
    task.pt_fork <-
      Some
        (match clone task.pt_asp with
        | Error (`Commit_limit | `Out_of_memory) -> Error Errno.ENOMEM
        | Ok a -> Ok a)
  | Core_touch { addr; len } ->
    task.pt_touch <- Some (Vmem.Addr_space.touch_range task.pt_asp ~addr ~len)

(* Replay the recorded charges into the real meters, reconstructing the
   attribution context each was observed under. Runs with the
   dispatching syscall's ambient blame context active, so context-free
   charges land exactly where a sequential core would have put them. *)
let replay_log t task () =
  List.iter
    (function
      | S_charge (None, cat, n, cycles) ->
        Vmem.Cost.charge ~n t.cost cat cycles
      | S_charge (Some (id, kind), cat, n, cycles) ->
        Vmem.Blame.with_context t.blame ~id kind (fun () ->
            Vmem.Cost.charge ~n t.cost cat cycles)
      | S_ipi (src, dsts, full, n) ->
        Kstat.on_ipi t.kstat ~src ~dsts ~full ~n)
    (List.rev !(task.pt_log))

(* Phase B: dispatch every pending of the round in ascending CPU order.
   Whitelisted cores of pendings whose COW family appears exactly once
   in the round are precomputed first — concurrently when the kernel has
   a worker pool — against scratch meters; each dispatch then replays
   its recorded charges in its sequential position. The replay order
   equals the sequential dispatch order, so every simulated number is
   identical at any [par_jobs]. *)
let dispatch_batch t s pool batch =
  let pendings =
    List.filter_map
      (fun (cpu, (th : Proc.thread)) ->
        match th.Proc.pending with
        | Some p -> Some (cpu, th, p)
        | None -> None)
      batch
  in
  let family_of th = Vmem.Addr_space.family (proc_of t th).Proc.aspace in
  let fam_count = Hashtbl.create 8 in
  List.iter
    (fun (_, th, _) ->
      let fam = family_of th in
      let n = Option.value ~default:0 (Hashtbl.find_opt fam_count fam) in
      Hashtbl.replace fam_count fam (n + 1))
    pendings;
  let par_ok =
    t.fault = None
    && not (List.exists (fun (_, _, p) -> crosses_aspaces p) pendings)
  in
  let eligible =
    if not par_ok then []
    else
      List.filter_map
        (fun (cpu, th, p) ->
          match core_of_pending p with
          | Some core when Hashtbl.find fam_count (family_of th) = 1 -> (
            match core with
            | Core_touch _
              when Vmem.Addr_space.pager_active (proc_of t th).Proc.aspace
                   || Vmem.Frame.policy t.frames = Vmem.Frame.Demand ->
              (* pager-backed (or Demand-policy) touches stay
                 sequential: a failed first touch may OOM-kill another
                 process of the round, which the precompute-against-
                 scratch-meters detour cannot express *)
              None
            | Core_touch _ | Core_fork _ -> Some (cpu, th, core))
          | Some _ | None -> None)
        pendings
  in
  let tasks =
    (* a single eligible core gains nothing from the scratch detour:
       direct dispatch already is the sequential order *)
    if List.length eligible < 2 then []
    else
      List.map (fun (cpu, th, core) -> prepare_task t s (cpu, th) core)
        eligible
  in
  (match tasks with
  | [] -> ()
  | tasks ->
    (match pool with
    | Some pool ->
      Workload.Par.Pool.run pool
        (Array.of_list (List.map (fun task () -> run_core task) tasks))
    | None -> List.iter run_core tasks);
    (* cores done: point the spaces back at the kernel meters before any
       dispatch charges *)
    List.iter
      (fun task -> Vmem.Addr_space.set_meters task.pt_asp (kernel_meters t))
      tasks);
  let task_for cpu = List.find_opt (fun task -> task.pt_cpu = cpu) tasks in
  List.iter
    (fun (cpu, (th : Proc.thread)) ->
      Vmem.Tlb.set_active t.tlb cpu;
      if th.Proc.tstate = Proc.Exited then (
        (* an earlier dispatch of this round killed the process, so
           sequentially this syscall never ran: quietly undo the
           precomputed clone (its charges were never replayed) *)
        match task_for cpu with
        | Some { pt_fork = Some (Ok aspace); _ } ->
          Vmem.Addr_space.destroy aspace
        | Some _ | None -> ())
      else
        match th.Proc.pending with
        | Some p ->
          th.Proc.pending <- None;
          (match task_for cpu with
          | Some task -> (
            match task.pt_core with
            | Core_fork _ ->
              t.fork_override <-
                Some (Option.get task.pt_fork, replay_log t task)
            | Core_touch _ ->
              t.touch_override <-
                Some (Option.get task.pt_touch, replay_log t task))
          | None -> ());
          dispatch t th p;
          t.fork_override <- None;
          t.touch_override <- None
        | None -> if th.Proc.tstate = Proc.Running then thread_returned t th)
    batch

let queues_empty s = Array.for_all Queue.is_empty s.runqs

let run_smp ~max_ticks t s =
  let deadline = t.clock + max_ticks in
  (* the in-kernel pool draws from the same process-wide jobs budget as
     Workload.Par.map, so a sweep harness fanning kernels out across
     domains cannot be oversubscribed by the kernels' own pools: inner
     pools then get zero workers and run their batches sequentially *)
  let pool =
    if t.config.par_jobs > 1 then
      Some (Workload.Par.Pool.create ~workers:(t.config.par_jobs - 1))
    else None
  in
  if Option.is_some pool then Vmem.Frame.set_threadsafe t.frames true;
  let finally () =
    match pool with
    | Some p ->
      Workload.Par.Pool.shutdown p;
      Vmem.Frame.set_threadsafe t.frames false
    | None -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        if t.clock >= deadline then Tick_limit
        else begin
          check_alarms t;
          match pick_batch t s with
          | [] -> (
            retry_parked t;
            if not (queues_empty s) then loop ()
            else if t.parked = [] then All_exited
            else
              match next_timer_tick t with
              | Some at when at > t.clock ->
                t.clock <- at;
                check_alarms t;
                retry_parked t;
                if queues_empty s && t.parked <> [] then
                  Stalled (describe_stalls t)
                else loop ()
              | Some _ | None -> Stalled (describe_stalls t))
          | batch ->
            List.iter (run_slice t s) batch;
            dispatch_batch t s pool batch;
            retry_parked t;
            loop ()
        end
      in
      loop ())

let run_seq ~max_ticks t =
  let deadline = t.clock + max_ticks in
  let rec loop () =
    if t.clock >= deadline then Tick_limit
    else begin
      check_alarms t;
      match next_ready t with
      | Some th ->
        t.clock <- t.clock + 1;
        step t th;
        retry_parked t;
        loop ()
      | None -> (
        retry_parked t;
        if not (Queue.is_empty t.ready) then loop ()
        else if t.parked = [] then All_exited
        else
          (* blocked threads and an armed alarm or poll deadline: jump
             time forward *)
          match next_timer_tick t with
          | Some at when at > t.clock ->
            t.clock <- at;
            check_alarms t;
            retry_parked t;
            if Queue.is_empty t.ready && t.parked <> [] then
              Stalled (describe_stalls t)
            else loop ()
          | Some _ | None -> Stalled (describe_stalls t))
    end
  in
  loop ()

let run ?(max_ticks = 10_000_000) t =
  match t.smp_st with
  | None -> run_seq ~max_ticks t
  | Some s -> run_smp ~max_ticks t s

let spawn_init t ?(argv = []) path =
  match find_program t path with
  | None -> Error Errno.ENOENT
  | Some prog -> (
    Vmem.Cost.charge t.cost "proc:create" (params t).Vmem.Cost.proc_create;
    match build_image t prog with
    | Error e -> Error e
    | Ok aspace ->
      let fdt = Fd_table.create ~max_fds:t.config.max_fds () in
      List.iter
        (fun fd ->
          match Fd_table.alloc fdt ~at_least:fd ~cloexec:false (make_console_ofd t) with
          | Ok got -> assert (got = fd)
          | Error _ -> assert false)
        [ 0; 1; 2 ];
      let proc =
        Proc.make ~pid:(fresh_pid t) ~parent:0 ~aspace ~fdt ~cwd:"/"
          ~program:prog.Program.name
      in
      Hashtbl.replace t.procs proc.Proc.pid proc;
      ignore (new_thread t proc ~is_main:true (prog.Program.main ~argv));
      Ok proc.Proc.pid)

let boot ?config ~programs ?argv path =
  let t = create ?config () in
  register_all t programs;
  match spawn_init t ?argv path with
  | Error e -> Error e
  | Ok _pid -> Ok (t, run t)
