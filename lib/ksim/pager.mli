(** The simulated user-mode pager behind demand paging.

    A {!Vmem.Addr_space.pager} is a pair of fetch closures the address
    space calls on first-touch (major) faults; this module is where
    their behaviour — the fetch-cost model per pulled page and the
    private cookie encoding — lives, keeping vmem ignorant of what a
    cookie means. Three page sources are modelled:

    - {e zero-fill} ([zero_cookie]): anonymous demand memory served by
      the pager (charged ["pager:fetch-zero"]);
    - {e image-backed} ([image_cookie]): a page of the executable image,
      installed lazily by a demand-paged exec (["pager:fetch-image"]);
    - {e template-backed} (no cookie — the backing-table path): a page
      copied out of a sealed zygote template on first touch
      (["pager:fetch-template"]).

    Each first-touch fault additionally charges one ["pager:request"]
    upcall, amortised over [readahead + 1] pages when readahead pulls
    neighbours in — the batching policy knob of E18.

    On a real OS this layer is what [userfaultfd] (Linux) or an external
    pager port (Mach) would implement; here the pager is a trusted
    closure and only its costs are simulated. *)

val zero_cookie : int
(** Cookie for pager-served demand-zero pages. *)

val image_cookie : page:int -> int
(** Cookie for page [page] (0-based) of an executable image.
    @raise Invalid_argument on a negative page. *)

val image_stride : int
(** The per-page cookie increment of a consecutive image run:
    [image_cookie ~page:(p + 1) = image_cookie ~page:p + image_stride].
    Pass as [~stride] to {!Vmem.Addr_space.map_lazy} when installing an
    image segment in one call. *)

val decode : int -> [ `Zero | `Image of int ]
(** Inverse of the encoders (exposed for tests and trace dumps).
    @raise Invalid_argument on an unknown tag. *)

val make :
  frames:Vmem.Frame.t ->
  deny:(unit -> bool) ->
  readahead:int ->
  unit ->
  Vmem.Addr_space.pager
(** Build the pager for one machine: [frames] is its physical memory
    (template fetches copy pinned frames out of it), [deny] the
    fault-injection hook consulted per pulled page (wire to
    {!Fault.on_pager_fetch}), [readahead] the batch knob.
    @raise Invalid_argument on negative [readahead]. *)
