(** Deterministic fault injection for the simulated kernel.

    The paper's core indictment of fork is its failure behaviour: ENOMEM
    at fork is effectively untestable on a real system, so callers don't
    handle it and systems overcommit instead (E6). This module makes
    failure a first-class, reproducible dimension of ksim: a {!spec} is
    a schedule of injected failures — explicit "fail the Nth occurrence"
    triggers and seeded random rates — applied at three boundaries:

    - {e frame allocation} ([Vmem.Frame.alloc], batched paths included):
      the allocation fails with [`Out_of_memory], surfacing as [ENOMEM];
    - {e commit accounting} ([Vmem.Frame.commit]): the charge fails with
      [`Commit_limit], surfacing as [ENOMEM] — this is the strict-commit
      rejection path fork exercises first;
    - {e syscall dispatch}: a fallible syscall replies with the injected
      errno ([ENOMEM], [EAGAIN] or [EINTR]) without running at all, the
      transient-failure model a retry policy must survive.

    Schedules are deterministic: the same [spec] (including [seed])
    against the same programs injects at exactly the same points.
    Occurrence counting is per-machine and starts at 1 at boot. Every
    injection is recorded in {!Kstat} (per-site counters) and, for
    traced runs, stamped on the syscall's span args as ["injected"]. *)

type site =
  | Frame_alloc  (** a physical frame allocation *)
  | Commit  (** a strict-commit accounting charge *)
  | Syscall  (** a syscall reply, decided at dispatch *)
  | Pager_fetch  (** a user-mode pager pulling one page at first touch *)

type trigger =
  | Frame_alloc_nth of int
      (** fail the Nth frame allocation of the run (1-based) *)
  | Commit_nth of int  (** fail the Nth non-empty commit charge *)
  | Syscall_nth of { kind : string; nth : int; errno : Errno.t }
      (** fail the Nth syscall named [kind] (see {!Sysreq.name}) with
          [errno]; only fallible syscalls are counted *)
  | Frame_alloc_random of float
      (** fail each frame allocation with this probability *)
  | Commit_random of float
  | Syscall_random of { kind : string option; p : float; errno : Errno.t }
      (** fail each dispatch of [kind] ([None] = any fallible syscall)
          with probability [p] *)
  | Pager_fetch_nth of int
      (** fail the Nth page the pager pulls (readahead pages count) *)
  | Pager_fetch_random of float
      (** fail each pager page pull with this probability *)

type spec = { seed : int; triggers : trigger list }

val no_faults : spec
(** Empty schedule, seed 0 — injects nothing. *)

val injectable : Errno.t list
(** Errnos a syscall-dispatch trigger may carry:
    [[ENOMEM; EAGAIN; EINTR]]. *)

val validate : spec -> (unit, string) result
(** Reject schedules with non-injectable errnos, non-positive
    occurrence numbers, or probabilities outside [[0, 1]]. *)

type t

val create : spec -> t
(** @raise Invalid_argument when {!validate} rejects the spec. *)

val spec : t -> spec

(** {2 Injection points} (called by the kernel and the frame allocator) *)

val on_frame_alloc : t -> bool
(** Advance the frame-allocation occurrence counter; [true] = deny. *)

val on_commit : t -> bool

val on_pager_fetch : t -> bool
(** Advance the pager-pull occurrence counter; [true] = deny the fetch
    (the page stays lazy/absent; a denied faulting page surfaces as
    ENOMEM or an OOM kill, a denied readahead page just stops the
    batch). *)

val on_syscall : t -> kind:string -> Errno.t option
(** Advance [kind]'s occurrence counter; [Some e] = reply [Error e]
    without executing the syscall. Call only for fallible syscalls. *)

(** {2 Accounting} *)

val injected : t -> site -> int
(** Injections performed so far at the given site. *)

val total_injected : t -> int

val seen : t -> site -> int
(** Occurrences observed so far at the given site (injected or not). *)
