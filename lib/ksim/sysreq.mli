(** The simulated syscall interface.

    ['a t] is a request whose reply has type ['a]; simulated programs
    perform the {!Sys} effect and the kernel's scheduler handles it.

    {b Fork and closures.} Real fork "returns twice"; an in-process
    simulator cannot duplicate an OCaml continuation (they are one-shot),
    so [Fork]/[Vfork] take the child's continuation as an explicit
    closure and return the child pid to the parent. Everything the
    {e kernel} duplicates on fork — address space (COW), fd table,
    signal state, mutex memory — is modelled faithfully; only the
    user-level program counter is passed explicitly. DESIGN.md records
    this substitution. *)

type 'a t =
  | Getpid : Types.pid t
  | Getppid : Types.pid t
  | Gettid : Types.tid t
  | Fork : (unit -> unit) -> (Types.pid, Errno.t) result t
      (** COW fork; the closure is the child's sole thread. *)
  | Fork_eager : (unit -> unit) -> (Types.pid, Errno.t) result t
      (** Ablation: eager-copy fork (no COW). *)
  | Vfork : (unit -> unit) -> (Types.pid, Errno.t) result t
      (** Child borrows the parent's address space; the parent blocks
          until the child execs or exits. *)
  | Spawn : Types.spawn_req -> (Types.pid, Errno.t) result t
      (** posix_spawn: fresh process, no address-space copy. *)
  | Exec : { path : string; argv : string list } -> (unit, Errno.t) result t
      (** Replaces the calling process image; returns only on error. *)
  | Exit : int -> unit t  (** Never returns. *)
  | Waitpid : Types.wait_target -> (Types.pid * Types.status, Errno.t) result t
  | Kill : Types.pid * Usignal.t -> (unit, Errno.t) result t
  | Sigaction :
      Usignal.t * Usignal.disposition
      -> (Usignal.disposition, Errno.t) result t
      (** Returns the previous disposition. *)
  | Sigprocmask : Types.mask_op * Usignal.Set.t -> Usignal.Set.t t
      (** Returns the previous mask. *)
  | Alarm : int -> int t
      (** Schedule SIGALRM after n clock ticks (0 cancels); returns
          ticks remaining on the previous alarm. *)
  | Open : string * Types.open_flags -> (Types.fd, Errno.t) result t
  | Close : Types.fd -> (unit, Errno.t) result t
  | Read : Types.fd * int -> (string, Errno.t) result t
      (** [""] is end-of-file. Blocks on an empty pipe with writers. *)
  | Write : Types.fd * string -> (int, Errno.t) result t
      (** Blocks on a full pipe; EPIPE (+SIGPIPE) on a broken one. *)
  | Dup : Types.fd -> (Types.fd, Errno.t) result t
  | Dup2 : { src : Types.fd; dst : Types.fd } -> (Types.fd, Errno.t) result t
  | Set_cloexec : Types.fd * bool -> (unit, Errno.t) result t
  | Pipe : (Types.fd * Types.fd, Errno.t) result t
  | Try_lock : Types.fd -> (unit, Errno.t) result t
      (** fcntl-style advisory lock: owned by the process, NOT inherited
          by fork children. EAGAIN if held by another process. *)
  | Unlock : Types.fd -> (unit, Errno.t) result t
  | Mmap : { len : int; perm : Vmem.Perm.t } -> (int, Errno.t) result t
  | Munmap : { addr : int; len : int } -> (unit, Errno.t) result t
  | Brk : int option -> (int, Errno.t) result t
      (** [None] queries the current break. *)
  | Mem_read : { addr : int; len : int } -> (string, Errno.t) result t
      (** A load from simulated memory (not a real syscall: charges fault
          costs only). *)
  | Mem_write : { addr : int; data : string } -> (unit, Errno.t) result t
  | Touch : { addr : int; len : int } -> (int, Errno.t) result t
      (** Write-touch every page of the range without materialising
          contents (a memset stand-in); returns pages touched. *)
  | Thread_create : (unit -> unit) -> (Types.tid, Errno.t) result t
  | Mutex_create : int t
  | Mutex_lock : int -> (unit, Errno.t) result t
  | Mutex_unlock : int -> (unit, Errno.t) result t
  | Mutex_trylock : int -> (unit, Errno.t) result t  (** EAGAIN if held *)
  | Mutex_reinit : int -> (unit, Errno.t) result t
      (** Re-initialize to unlocked regardless of owner — what atfork
          child handlers do to recover locks orphaned by fork. *)
  | Yield : unit t
  | Handled_signals : string -> int t
      (** How many times the named handler ran (test observability). *)
  | Chdir : string -> (unit, Errno.t) result t
      (** The working directory is inherited by fork AND spawn children
          (spawn attrs could override; ours keep it simple). *)
  | Getcwd : string t
  | Atfork_register : Types.atfork -> unit t
      (** pthread_atfork: append a handler triple. Handlers are stored in
          the PCB (image state): copied by fork, destroyed by exec. The
          run-the-handlers protocol lives in {!Api.fork}, like libc. *)
  | Atfork_list : Types.atfork list t
      (** Registration order. *)
  | Pb_create : (Types.pid, Errno.t) result t
      (** Cross-process operations (the paper's §6 proposal, as in ExOS /
          Fuchsia's process_builder): create an {e embryo} child — a
          process with an empty address space and fd table and no
          threads — to be populated piecewise by the parent. *)
  | Pb_map :
      { pid : Types.pid; len : int; perm : Vmem.Perm.t }
      -> (int, Errno.t) result t
      (** Map anonymous memory {e in the embryo child}; returns the
          child-relative address. *)
  | Pb_write :
      { pid : Types.pid; addr : int; data : string }
      -> (unit, Errno.t) result t
      (** Write into the embryo child's memory. *)
  | Pb_copy_fd :
      { pid : Types.pid; src : Types.fd; dst : Types.fd }
      -> (unit, Errno.t) result t
      (** Install a copy of the parent's [src] descriptor at [dst] in the
          embryo child. *)
  | Pb_start :
      { pid : Types.pid; path : string; argv : string list }
      -> (unit, Errno.t) result t
      (** Load a program image into the embryo and start its main
          thread. After this the child is an ordinary process. *)
  | Stdio_flushed : { bytes : int; inherited : int } -> unit t
      (** Accounting-only request posted by {!Stdio.flush}: [bytes]
          written out, of which [inherited] were buffered by a different
          process (fork-duplicated output). Feeds {!Kstat}; charges no
          cycles and is not traced, so instrumented runs cost the same
          as bare ones. *)
  | Template_freeze : { pid : Types.pid option } -> (int, Errno.t) result t
      (** Seal a warmed process into an immutable zygote template:
          [None] freezes the caller, [Some pid] an alive child of the
          caller. One fork-priced pass downgrades the image to read-only
          COW and pins its frames immortal; the source keeps running
          (later writes COW away from the template). Returns the
          template id. EBUSY unless the source is the sole owner of
          every resident frame; EINVAL mid-vfork; ESRCH/EPERM on a bad
          target. *)
  | Template_spawn :
      { tpl : int; body : unit -> unit }
      -> (Types.pid, Errno.t) result t
      (** Create a child from a template in O(shared subtrees): commit
          charge first (the only fallible step — failure leaves the
          template untouched), then share the sealed page table by
          bumping its root. The child starts at [body] with the
          template's captured image (fds, signal state, cwd, program).
          EINVAL on an unknown template id. *)
  | Template_discard : int -> (unit, Errno.t) result t
      (** Drop a template, un-pinning and freeing its pages. EBUSY while
          any live process still depends on it; EINVAL on an unknown
          id. *)
  | Socket : (Types.fd, Errno.t) result t
      (** Fresh stream socket (see {!Socket}): EMFILE when the fd table
          is full. *)
  | Bind : Types.fd * int -> (unit, Errno.t) result t
      (** Bind to a port on the simulated host. EADDRINUSE if another
          live socket holds the port; EINVAL if not fresh. *)
  | Listen : { fd : Types.fd; backlog : int } -> (unit, Errno.t) result t
      (** EINVAL unless bound, or if [backlog < 1]. *)
  | Accept : Types.fd -> (Types.fd, Errno.t) result t
      (** Pop the oldest established connection as a new connected fd;
          blocks while the accept queue is empty. EINVAL on a
          non-listening socket. *)
  | Connect : Types.fd * int -> (unit, Errno.t) result t
      (** Connect a fresh socket to a listening port. The handshake
          completes here (the connection joins the listener's accept
          queue); ECONNREFUSED when no live listener holds the port
          {e or} its backlog is full — overflow refuses, never blocks
          (documented in DESIGN.md §16). *)
  | Poll :
      { interests : Types.poll_interest list; timeout : int }
      -> (Types.poll_revent list, Errno.t) result t
      (** Readiness multiplexing over pipe and socket fds. [timeout] is
          in clock ticks: [0] polls and returns immediately (possibly
          [[]]), negative blocks until some fd is ready, positive blocks
          at most that many ticks ([[]] on timeout). EBADF if any
          polled fd is unknown. *)

type _ Effect.t += Sys : 'a t -> 'a Effect.t

val name : 'a t -> string
(** Syscall name for traces, e.g. ["fork"]. *)

val errnos_of_name : string -> Errno.t list option
(** The documented errno domain of the named syscall: every errno its
    reply may carry, including the transient failures a fault schedule
    can inject ([EINTR], [EAGAIN], [ENOMEM] — {!Fault.injectable}).
    [None] for syscalls that cannot fail (and for unknown names). Tests
    assert every traced reply errno lies in this set. *)
