type phase = Begin | End | Instant

type detail =
  | D_none
  | D_fork of { live_threads : int }
  | D_exec of { inherited_fds : int }
  | D_exit of { open_fds : int }
  | D_open of { path : string; cloexec : bool }
  | D_child of { child : Types.pid; style : string }

type outcome = Ok_result | Err of Errno.t

type event = {
  seq : int;
  tick : int;
  pid : Types.pid;
  tid : Types.tid;
  what : string;
  phase : phase;
  args : (string * string) list;
  detail : detail;
  ts_ns : float;
  span_ns : float;
  outcome : outcome option;
  cpu : int option;  (** simulated CPU, recorded only by SMP kernels *)
}

type t = {
  capacity : int;
  ring : event option array;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { capacity; ring = Array.make capacity None; total = 0 }

let record ?(args = []) ?(phase = Instant) ?(detail = D_none) ?(ts_ns = 0.0)
    ?(span_ns = 0.0) ?outcome ?cpu t ~tick ~pid ~tid what =
  let e =
    {
      seq = t.total;
      tick;
      pid;
      tid;
      what;
      phase;
      args;
      detail;
      ts_ns;
      span_ns;
      outcome;
      cpu;
    }
  in
  t.ring.(t.total mod t.capacity) <- Some e;
  t.total <- t.total + 1

let events t =
  let out = ref [] in
  let start = max 0 (t.total - t.capacity) in
  for seq = t.total - 1 downto start do
    match t.ring.(seq mod t.capacity) with
    | Some e when e.seq = seq -> out := e :: !out
    | Some _ | None -> ()
  done;
  !out

let total t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.total <- 0

(* Single substring scan, hoisted so [find] allocates nothing per
   candidate position: compare in place, short-circuiting on the first
   character. *)
let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else begin
    let c0 = String.unsafe_get needle 0 in
    let rec rest i j =
      j >= nn || (String.unsafe_get hay (i + j) = String.unsafe_get needle j
                  && rest i (j + 1))
    in
    let limit = nh - nn in
    let rec go i =
      i <= limit && ((String.unsafe_get hay i = c0 && rest i 1) || go (i + 1))
    in
    go 0
  end

let find t ~pattern =
  List.filter (fun e -> contains_substring e.what pattern) (events t)

let arg e key = List.assoc_opt key e.args

let int_arg e key =
  match arg e key with Some v -> int_of_string_opt v | None -> None

(* ------------------------------------------------------------------ *)
(* Exporters *)

let phase_string = function Begin -> "B" | End -> "E" | Instant -> "i"

let detail_fields = function
  | D_none -> []
  | D_fork { live_threads } ->
    [ ("live_threads", Metrics.Json.int live_threads) ]
  | D_exec { inherited_fds } ->
    [ ("inherited_fds", Metrics.Json.int inherited_fds) ]
  | D_exit { open_fds } -> [ ("open_fds", Metrics.Json.int open_fds) ]
  | D_open { path; cloexec } ->
    [ ("path", Metrics.Json.str path); ("cloexec", Metrics.Json.bool cloexec) ]
  | D_child { child; style } ->
    [ ("child", Metrics.Json.int child); ("style", Metrics.Json.str style) ]

let outcome_fields = function
  | None -> []
  | Some Ok_result -> [ ("result", Metrics.Json.str "ok") ]
  | Some (Err e) -> [ ("result", Metrics.Json.str (Errno.to_string e)) ]

let event_json e =
  Metrics.Json.obj
    ([
       ("seq", Metrics.Json.int e.seq);
       ("tick", Metrics.Json.int e.tick);
       ("pid", Metrics.Json.int e.pid);
       ("tid", Metrics.Json.int e.tid);
       ("what", Metrics.Json.str e.what);
       ("phase", Metrics.Json.str (phase_string e.phase));
       ("ts_ns", Metrics.Json.num e.ts_ns);
     ]
    @ (if e.span_ns > 0.0 then [ ("span_ns", Metrics.Json.num e.span_ns) ]
       else [])
    @ (match e.cpu with
      | Some c -> [ ("cpu", Metrics.Json.int c) ]
      | None -> [])
    @ outcome_fields e.outcome
    @ detail_fields e.detail
    @
    match e.args with
    | [] -> []
    | args ->
      [
        ( "args",
          Metrics.Json.obj
            (List.map (fun (k, v) -> (k, Metrics.Json.str v)) args) );
      ])

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Metrics.Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* Chrome trace_event JSON (load in Perfetto / chrome://tracing).
   Timestamps are microseconds; Begin/End map to "B"/"E" duration
   events, everything else to "i" instants. Every event already carries
   its real pid/tid, so each process gets its own track; the "M"
   metadata events below name the tracks (pid 1 is the root, children
   are labelled with the creation style recorded in their D_child
   instant) and order them by pid, which is creation order.

   [~lanes:`Cpu] instead renders one lane per simulated CPU (one
   synthetic process, tid = cpu id): the per-CPU timeline view of an
   SMP run. Events recorded without a cpu land in a "cpu ?" lane. *)
let to_chrome ?(lanes = `Pid) t =
  let us ns = ns /. 1000.0 in
  let evs = events t in
  let styles : (Types.pid, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.detail with
      | D_child { child; style } ->
        if not (Hashtbl.mem styles child) then Hashtbl.add styles child style
      | _ -> ())
    evs;
  let pids =
    List.sort_uniq compare (List.map (fun e -> e.pid) evs)
  in
  let tids =
    List.sort_uniq compare (List.map (fun e -> (e.pid, e.tid)) evs)
  in
  let meta name pid extra_args =
    Metrics.Json.obj
      ([
         ("name", Metrics.Json.str name);
         ("ph", Metrics.Json.str "M");
         ("pid", Metrics.Json.int pid);
       ]
      @ extra_args)
  in
  let process_meta =
    List.concat_map
      (fun pid ->
        let label =
          match Hashtbl.find_opt styles pid with
          | Some style -> Printf.sprintf "pid %d (%s)" pid style
          | None -> Printf.sprintf "pid %d" pid
        in
        [
          meta "process_name" pid
            [
              ( "args",
                Metrics.Json.obj [ ("name", Metrics.Json.str label) ] );
            ];
          meta "process_sort_index" pid
            [
              ( "args",
                Metrics.Json.obj [ ("sort_index", Metrics.Json.int pid) ] );
            ];
        ])
      pids
  in
  let thread_meta =
    List.map
      (fun (pid, tid) ->
        meta "thread_name" pid
          [
            ("tid", Metrics.Json.int tid);
            ( "args",
              Metrics.Json.obj
                [ ("name", Metrics.Json.str (Printf.sprintf "tid %d" tid)) ]
            );
          ])
      tids
  in
  (* lane assignment: `Pid keeps the real (pid, tid); `Cpu collapses
     everything into one synthetic process whose threads are the CPUs *)
  let lane_pid, lane_tid =
    match lanes with
    | `Pid -> ((fun e -> e.pid), fun e -> e.tid)
    | `Cpu ->
      ( (fun _ -> 0),
        fun e -> match e.cpu with Some c -> c | None -> -1 )
  in
  let cpu_meta =
    match lanes with
    | `Pid -> []
    | `Cpu ->
      let cpus =
        List.sort_uniq compare
          (List.map (fun e -> match e.cpu with Some c -> c | None -> -1) evs)
      in
      meta "process_name" 0
        [
          ( "args",
            Metrics.Json.obj [ ("name", Metrics.Json.str "ksim cpus") ] );
        ]
      :: List.map
           (fun c ->
             let name = if c < 0 then "cpu ?" else Printf.sprintf "cpu %d" c in
             meta "thread_name" 0
               [
                 ("tid", Metrics.Json.int c);
                 ( "args",
                   Metrics.Json.obj [ ("name", Metrics.Json.str name) ] );
               ])
           cpus
  in
  let ev e =
    let common =
      [
        ("name", Metrics.Json.str e.what);
        ("ph", Metrics.Json.str (phase_string e.phase));
        ("ts", Metrics.Json.num (us e.ts_ns));
        ("pid", Metrics.Json.int (lane_pid e));
        ("tid", Metrics.Json.int (lane_tid e));
      ]
    in
    let scope =
      match e.phase with
      | Instant -> [ ("s", Metrics.Json.str "t") ]
      | Begin | End -> []
    in
    let args =
      outcome_fields e.outcome
      @ detail_fields e.detail
      @ List.map (fun (k, v) -> (k, Metrics.Json.str v)) e.args
    in
    Metrics.Json.obj
      (common @ scope
      @ match args with [] -> [] | a -> [ ("args", Metrics.Json.obj a) ])
  in
  let metadata =
    match lanes with
    | `Pid -> process_meta @ thread_meta
    | `Cpu -> cpu_meta
  in
  Metrics.Json.obj
    [
      ("traceEvents", Metrics.Json.arr (metadata @ List.map ev evs));
      ("displayTimeUnit", Metrics.Json.str "ns");
    ]
