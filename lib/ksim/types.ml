type pid = int
type tid = int
type fd = int
type status = Exited of int | Killed of Usignal.t

let pp_status ppf = function
  | Exited code -> Format.fprintf ppf "exited(%d)" code
  | Killed s -> Format.fprintf ppf "killed(%a)" Usignal.pp s

let status_equal a b =
  match (a, b) with
  | Exited x, Exited y -> x = y
  | Killed x, Killed y -> Usignal.equal x y
  | Exited _, Killed _ | Killed _, Exited _ -> false

type open_flags = {
  read : bool;
  write : bool;
  append : bool;
  create : bool;
  trunc : bool;
  cloexec : bool;
}

let o_rdonly =
  { read = true; write = false; append = false; create = false; trunc = false;
    cloexec = false }

let o_wronly =
  { read = false; write = true; append = false; create = true; trunc = true;
    cloexec = false }

let o_rdwr = { o_rdonly with write = true; create = true }
let o_append = { o_wronly with trunc = false; append = true }
let with_cloexec flags = { flags with cloexec = true }

type file_action =
  | Fa_open of { fd : fd; path : string; flags : open_flags }
  | Fa_dup2 of fd * fd
  | Fa_close of fd

type spawn_attr = {
  reset_signals : bool;
  mask : Usignal.Set.t option;
}

let default_attr = { reset_signals = false; mask = None }

type spawn_req = {
  path : string;
  argv : string list;
  file_actions : file_action list;
  attr : spawn_attr;
}

type atfork = {
  prepare : (unit -> unit) option;
  in_parent : (unit -> unit) option;
  in_child : (unit -> unit) option;
}

type wait_target = Any_child | Child of pid
type mask_op = Block | Unblock | Set_mask

type poll_interest = { pi_fd : fd; pi_in : bool; pi_out : bool }

type poll_revent = {
  pr_fd : fd;
  pr_in : bool;
  pr_out : bool;
  pr_hup : bool;
  pr_err : bool;
}

let pollin fd = { pi_fd = fd; pi_in = true; pi_out = false }
let pollout fd = { pi_fd = fd; pi_in = false; pi_out = true }
