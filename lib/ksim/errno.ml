type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOEXEC
  | EDEADLK
  | E2BIG
  | EBUSY
  | EADDRINUSE
  | ECONNREFUSED

let all =
  [
    EPERM; ENOENT; ESRCH; EINTR; EBADF; ECHILD; EAGAIN; ENOMEM; EACCES;
    EFAULT; EEXIST; ENOTDIR; EISDIR; EINVAL; EMFILE; ENOSPC; EPIPE; ENOSYS;
    ENOEXEC; EDEADLK; E2BIG; EBUSY; EADDRINUSE; ECONNREFUSED;
  ]

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | EPIPE -> "EPIPE"
  | ENOSYS -> "ENOSYS"
  | ENOEXEC -> "ENOEXEC"
  | EDEADLK -> "EDEADLK"
  | E2BIG -> "E2BIG"
  | EBUSY -> "EBUSY"
  | EADDRINUSE -> "EADDRINUSE"
  | ECONNREFUSED -> "ECONNREFUSED"

let of_string s = List.find_opt (fun e -> to_string e = s) all

let message = function
  | EPERM -> "operation not permitted"
  | ENOENT -> "no such file or directory"
  | ESRCH -> "no such process"
  | EINTR -> "interrupted system call"
  | EBADF -> "bad file descriptor"
  | ECHILD -> "no child processes"
  | EAGAIN -> "resource temporarily unavailable"
  | ENOMEM -> "out of memory"
  | EACCES -> "permission denied"
  | EFAULT -> "bad address"
  | EEXIST -> "file exists"
  | ENOTDIR -> "not a directory"
  | EISDIR -> "is a directory"
  | EINVAL -> "invalid argument"
  | EMFILE -> "too many open files"
  | ENOSPC -> "no space left on device"
  | EPIPE -> "broken pipe"
  | ENOSYS -> "function not implemented"
  | ENOEXEC -> "exec format error"
  | EDEADLK -> "resource deadlock avoided"
  | E2BIG -> "argument list too long"
  | EBUSY -> "device or resource busy"
  | EADDRINUSE -> "address already in use"
  | ECONNREFUSED -> "connection refused"

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)
