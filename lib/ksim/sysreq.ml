type 'a t =
  | Getpid : Types.pid t
  | Getppid : Types.pid t
  | Gettid : Types.tid t
  | Fork : (unit -> unit) -> (Types.pid, Errno.t) result t
  | Fork_eager : (unit -> unit) -> (Types.pid, Errno.t) result t
  | Vfork : (unit -> unit) -> (Types.pid, Errno.t) result t
  | Spawn : Types.spawn_req -> (Types.pid, Errno.t) result t
  | Exec : { path : string; argv : string list } -> (unit, Errno.t) result t
  | Exit : int -> unit t
  | Waitpid : Types.wait_target -> (Types.pid * Types.status, Errno.t) result t
  | Kill : Types.pid * Usignal.t -> (unit, Errno.t) result t
  | Sigaction :
      Usignal.t * Usignal.disposition
      -> (Usignal.disposition, Errno.t) result t
  | Sigprocmask : Types.mask_op * Usignal.Set.t -> Usignal.Set.t t
  | Alarm : int -> int t
  | Open : string * Types.open_flags -> (Types.fd, Errno.t) result t
  | Close : Types.fd -> (unit, Errno.t) result t
  | Read : Types.fd * int -> (string, Errno.t) result t
  | Write : Types.fd * string -> (int, Errno.t) result t
  | Dup : Types.fd -> (Types.fd, Errno.t) result t
  | Dup2 : { src : Types.fd; dst : Types.fd } -> (Types.fd, Errno.t) result t
  | Set_cloexec : Types.fd * bool -> (unit, Errno.t) result t
  | Pipe : (Types.fd * Types.fd, Errno.t) result t
  | Try_lock : Types.fd -> (unit, Errno.t) result t
  | Unlock : Types.fd -> (unit, Errno.t) result t
  | Mmap : { len : int; perm : Vmem.Perm.t } -> (int, Errno.t) result t
  | Munmap : { addr : int; len : int } -> (unit, Errno.t) result t
  | Brk : int option -> (int, Errno.t) result t
  | Mem_read : { addr : int; len : int } -> (string, Errno.t) result t
  | Mem_write : { addr : int; data : string } -> (unit, Errno.t) result t
  | Touch : { addr : int; len : int } -> (int, Errno.t) result t
  | Thread_create : (unit -> unit) -> (Types.tid, Errno.t) result t
  | Mutex_create : int t
  | Mutex_lock : int -> (unit, Errno.t) result t
  | Mutex_unlock : int -> (unit, Errno.t) result t
  | Mutex_trylock : int -> (unit, Errno.t) result t
  | Mutex_reinit : int -> (unit, Errno.t) result t
  | Yield : unit t
  | Handled_signals : string -> int t
  | Chdir : string -> (unit, Errno.t) result t
  | Getcwd : string t
  | Atfork_register : Types.atfork -> unit t
  | Atfork_list : Types.atfork list t
  | Pb_create : (Types.pid, Errno.t) result t
  | Pb_map :
      { pid : Types.pid; len : int; perm : Vmem.Perm.t }
      -> (int, Errno.t) result t
  | Pb_write :
      { pid : Types.pid; addr : int; data : string }
      -> (unit, Errno.t) result t
  | Pb_copy_fd :
      { pid : Types.pid; src : Types.fd; dst : Types.fd }
      -> (unit, Errno.t) result t
  | Pb_start :
      { pid : Types.pid; path : string; argv : string list }
      -> (unit, Errno.t) result t
  | Stdio_flushed : { bytes : int; inherited : int } -> unit t
  | Template_freeze : { pid : Types.pid option } -> (int, Errno.t) result t
  | Template_spawn :
      { tpl : int; body : unit -> unit }
      -> (Types.pid, Errno.t) result t
  | Template_discard : int -> (unit, Errno.t) result t
  | Socket : (Types.fd, Errno.t) result t
  | Bind : Types.fd * int -> (unit, Errno.t) result t
  | Listen : { fd : Types.fd; backlog : int } -> (unit, Errno.t) result t
  | Accept : Types.fd -> (Types.fd, Errno.t) result t
  | Connect : Types.fd * int -> (unit, Errno.t) result t
  | Poll :
      { interests : Types.poll_interest list; timeout : int }
      -> (Types.poll_revent list, Errno.t) result t

type _ Effect.t += Sys : 'a t -> 'a Effect.t

let name : type a. a t -> string = function
  | Getpid -> "getpid"
  | Getppid -> "getppid"
  | Gettid -> "gettid"
  | Fork _ -> "fork"
  | Fork_eager _ -> "fork_eager"
  | Vfork _ -> "vfork"
  | Spawn _ -> "posix_spawn"
  | Exec _ -> "execve"
  | Exit _ -> "exit"
  | Waitpid _ -> "waitpid"
  | Kill _ -> "kill"
  | Sigaction _ -> "sigaction"
  | Sigprocmask _ -> "sigprocmask"
  | Alarm _ -> "alarm"
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Dup _ -> "dup"
  | Dup2 _ -> "dup2"
  | Set_cloexec _ -> "set_cloexec"
  | Pipe -> "pipe"
  | Try_lock _ -> "try_lock"
  | Unlock _ -> "unlock"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Brk _ -> "brk"
  | Mem_read _ -> "mem_read"
  | Mem_write _ -> "mem_write"
  | Touch _ -> "touch"
  | Thread_create _ -> "thread_create"
  | Mutex_create -> "mutex_create"
  | Mutex_lock _ -> "mutex_lock"
  | Mutex_unlock _ -> "mutex_unlock"
  | Mutex_trylock _ -> "mutex_trylock"
  | Mutex_reinit _ -> "mutex_reinit"
  | Yield -> "yield"
  | Handled_signals _ -> "handled_signals"
  | Chdir _ -> "chdir"
  | Getcwd -> "getcwd"
  | Atfork_register _ -> "atfork_register"
  | Atfork_list -> "atfork_list"
  | Pb_create -> "pb_create"
  | Pb_map _ -> "pb_map"
  | Pb_write _ -> "pb_write"
  | Pb_copy_fd _ -> "pb_copy_fd"
  | Pb_start _ -> "pb_start"
  | Stdio_flushed _ -> "stdio_flushed"
  | Template_freeze _ -> "template_freeze"
  | Template_spawn _ -> "template_spawn"
  | Template_discard _ -> "template_discard"
  | Socket -> "socket"
  | Bind _ -> "bind"
  | Listen _ -> "listen"
  | Accept _ -> "accept"
  | Connect _ -> "connect"
  | Poll _ -> "poll"

(* The documented errno domain of each fallible syscall: the specific
   errnos its handler can produce, plus the transient set every fallible
   syscall can reply with under fault injection ({!Fault.injectable}).
   [test_fault] checks every traced reply against this table, so keep it
   in sync with the handlers in [Kernel.attempt]. *)
let errnos_of_name =
  let open Errno in
  let injectable = [ EINTR; EAGAIN; ENOMEM ] in
  let specific = function
    | "fork" | "fork_eager" | "vfork" | "pb_create" | "thread_create" ->
      Some []
    | "posix_spawn" ->
      Some [ ENOENT; ENOTDIR; EISDIR; EACCES; EEXIST; EINVAL; EBADF; EMFILE ]
    | "execve" -> Some [ ENOENT; ENOTDIR; EISDIR; EACCES; EINVAL ]
    | "waitpid" -> Some [ ECHILD ]
    | "kill" -> Some [ ESRCH ]
    | "sigaction" -> Some [ EINVAL ]
    | "open" -> Some [ ENOENT; ENOTDIR; EISDIR; EACCES; EEXIST; EINVAL; EMFILE ]
    | "close" | "set_cloexec" -> Some [ EBADF ]
    | "read" -> Some [ EBADF; EINVAL ]
    | "write" -> Some [ EBADF; EPIPE ]
    | "dup" -> Some [ EBADF; EMFILE ]
    | "dup2" -> Some [ EBADF; EMFILE; EINVAL ]
    | "pipe" -> Some [ EMFILE ]
    | "try_lock" -> Some [ EBADF; EINVAL ]
    | "unlock" -> Some [ EBADF; EINVAL; EPERM ]
    | "mmap" -> Some [ EINVAL ]
    | "munmap" -> Some [ EINVAL ]
    | "brk" -> Some [ EINVAL ]
    | "mem_read" | "mem_write" | "touch" -> Some [ EFAULT; EACCES ]
    | "mutex_lock" -> Some [ EINVAL; EDEADLK ]
    | "mutex_unlock" -> Some [ EINVAL; EPERM ]
    | "mutex_trylock" -> Some [ EINVAL ]
    | "mutex_reinit" -> Some [ EINVAL ]
    | "chdir" -> Some [ ENOENT; ENOTDIR; EACCES ]
    | "pb_map" -> Some [ ESRCH; EPERM; EINVAL ]
    | "pb_write" -> Some [ ESRCH; EPERM; EFAULT ]
    | "pb_copy_fd" -> Some [ ESRCH; EPERM; EBADF; EMFILE ]
    | "pb_start" -> Some [ ESRCH; EPERM; ENOENT; ENOTDIR; EISDIR; EACCES; EINVAL ]
    | "template_freeze" -> Some [ ESRCH; EPERM; EINVAL; EBUSY ]
    | "template_spawn" -> Some [ EINVAL ]
    | "template_discard" -> Some [ EINVAL; EBUSY ]
    | "socket" -> Some [ EMFILE ]
    | "bind" -> Some [ EBADF; EINVAL; EADDRINUSE ]
    | "listen" -> Some [ EBADF; EINVAL ]
    | "accept" -> Some [ EBADF; EINVAL; EMFILE ]
    | "connect" -> Some [ EBADF; EINVAL; ECONNREFUSED ]
    | "poll" -> Some [ EBADF; EINVAL ]
    | _ -> None
  in
  fun name ->
    match specific name with
    | None -> None
    | Some extra ->
      Some (extra @ List.filter (fun e -> not (List.mem e extra)) injectable)
