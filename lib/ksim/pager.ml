let tag_bits = 2
let tag_mask = (1 lsl tag_bits) - 1
let tag_zero = 0
let tag_image = 1

let zero_cookie = tag_zero
let image_stride = 1 lsl tag_bits
let image_cookie ~page =
  if page < 0 then invalid_arg "Pager.image_cookie: negative page";
  (page lsl tag_bits) lor tag_image

let decode cookie =
  match cookie land tag_mask with
  | 0 -> `Zero
  | 1 -> `Image (cookie lsr tag_bits)
  | _ -> invalid_arg "Pager: unknown cookie tag"

let make ~frames ~deny ~readahead () =
  if readahead < 0 then invalid_arg "Pager.make: negative readahead";
  let fetch cost ~cookie ~frame =
    ignore frame;
    let p = Vmem.Cost.params cost in
    match decode cookie with
    | `Zero ->
      (* a fresh frame already reads as zeroes; only the cost is real *)
      Vmem.Cost.charge cost "pager:fetch-zero" p.Vmem.Cost.pager_fetch_zero
    | `Image _ ->
      (* image geometry is modelled, not stored: there are no bytes to
         pull, but the page-sized read from the image is charged *)
      Vmem.Cost.charge cost "pager:fetch-image" p.Vmem.Cost.pager_fetch_image
  in
  let fetch_backing cost ~src ~dst =
    let p = Vmem.Cost.params cost in
    Vmem.Cost.charge cost "pager:fetch-template"
      p.Vmem.Cost.pager_fetch_template;
    Vmem.Frame.copy_contents frames ~src ~dst
  in
  { Vmem.Addr_space.fetch; fetch_backing; deny; readahead }
