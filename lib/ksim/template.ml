type t = {
  id : int;
  aspace : Vmem.Addr_space.t;
  commit_pages : int;
  fdt : Fd_table.t;
  program : string;
  cwd : string;
  sigdisp : Usignal.disposition array;
  sigmask : Usignal.Set.t;
  source : Types.pid;
  resident : int;
  mutable spawns : int;
  mutable live_deps : int;
}

let make ~id ~aspace ~commit_pages ~fdt ~program ~cwd ~sigdisp ~sigmask
    ~source ~resident =
  {
    id;
    aspace;
    commit_pages;
    fdt;
    program;
    cwd;
    sigdisp;
    sigmask;
    source;
    resident;
    spawns = 0;
    live_deps = 0;
  }

let destroy t =
  Fd_table.close_all t.fdt;
  Vmem.Addr_space.destroy_sealed t.aspace
