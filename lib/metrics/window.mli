(** Sliding-window statistics and rate gauges.

    A window of [width] time units is divided into [slots] buckets;
    samples land in the bucket of their timestamp, and queries merge
    every bucket still inside the window ending at the query's [now].
    Expiry is at slot granularity: a sample leaves the window somewhere
    between [width] and [width + width/slots] after it arrived.

    The caller supplies all timestamps — this module never reads a
    clock — so windows work equally over wall-clock seconds
    ({!Spawnlib.Pool}) and simulated nanoseconds, and behave
    deterministically under test. Time must be non-negative; it need
    not be monotone, but samples older than the newest slot they map to
    are simply merged into that slot. *)

type t

val create : ?slots:int -> ?hist_base:float -> ?hist_buckets:int ->
  width:float -> unit -> t
(** Defaults: 16 slots, histogram base [1e-6] with 48 log buckets
    (sub-microsecond to ~100s when samples are in seconds).
    @raise Invalid_argument if [width <= 0] or [slots < 2]. *)

val width : t -> float

val add : t -> now:float -> float -> unit
(** Record sample [v] at time [now].
    @raise Invalid_argument on negative time or sample. *)

val observations : t -> now:float -> int
val sum : t -> now:float -> float
val mean : t -> now:float -> float option
val minimum : t -> now:float -> float option
val maximum : t -> now:float -> float option

val rate : t -> now:float -> float
(** Observations per time unit over the window. *)

val histogram : t -> now:float -> Histogram.t
(** Merged histogram of the live slots (a fresh value; mutating it does
    not touch the window). *)

val quantile : t -> now:float -> float -> float option
(** [None] when the window is empty. *)

val to_json : t -> now:float -> Json.t
(** Summary (count, sum, mean, min, max, rate, p50/p95/p99). *)
