(** Labelled (x, y) data series and terminal "figures".

    A {!figure} corresponds to one figure of the paper: several series
    over a shared x-axis, rendered either as an aligned data table (for
    EXPERIMENTS.md) or as a coarse ASCII scatter chart (for eyeballing
    shape — who wins, where the crossover falls). *)

type series = { label : string; points : (float * float) list }

type figure = {
  title : string;
  xlabel : string;
  ylabel : string;
  xlog : bool;  (** render the x axis in log10 space *)
  ylog : bool;  (** render the y axis in log10 space *)
  series : series list;
}

val figure :
  ?xlog:bool ->
  ?ylog:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  figure
(** Build a figure. Defaults: linear axes. *)

val render_table :
  ?fmt_x:(float -> string) -> ?fmt_y:(float -> string) -> figure -> string
(** One row per distinct x value (union over series, sorted ascending),
    one column per series; missing points render as ["-"]. Default
    formatters print with [%.4g]. *)

val render_chart : ?width:int -> ?height:int -> figure -> string
(** ASCII scatter chart: each series gets a distinct glyph; axes are
    annotated with their min/max and a legend follows the plot. Points
    with non-positive coordinates on a log axis are dropped. Returns
    ["(no data)\n"] when nothing is plottable. *)

val render_csv : figure -> string
(** RFC-4180-ish CSV: header [xlabel,series...], one row per distinct x,
    empty cells for missing points. Values print with full [%.17g]
    precision for downstream plotting. *)

val to_json : figure -> Json.t
(** Full figure state; points as [[x, y]] pairs. *)
