type series = { label : string; points : (float * float) list }

type figure = {
  title : string;
  xlabel : string;
  ylabel : string;
  xlog : bool;
  ylog : bool;
  series : series list;
}

let figure ?(xlog = false) ?(ylog = false) ~title ~xlabel ~ylabel series =
  { title; xlabel; ylabel; xlog; ylog; series }

let default_fmt v = Printf.sprintf "%.4g" v

let render_table ?(fmt_x = default_fmt) ?(fmt_y = default_fmt) fig =
  let xs =
    List.concat_map (fun s -> List.map fst s.points) fig.series
    |> List.sort_uniq Float.compare
  in
  let tbl =
    Table.create
      ~align:(Table.Right :: List.map (fun _ -> Table.Right) fig.series)
      (fig.xlabel :: List.map (fun s -> s.label) fig.series)
  in
  let cell s x =
    match List.assoc_opt x s.points with
    | Some y -> fmt_y y
    | None -> "-"
  in
  List.iter
    (fun x -> Table.add_row tbl (fmt_x x :: List.map (fun s -> cell s x) fig.series))
    xs;
  Printf.sprintf "%s\n%s" fig.title (Table.render tbl)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv fig =
  let xs =
    List.concat_map (fun s -> List.map fst s.points) fig.series
    |> List.sort_uniq Float.compare
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (String.concat ","
       (csv_escape fig.xlabel
       :: List.map (fun s -> csv_escape s.label) fig.series));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%.17g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match List.assoc_opt x s.points with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%.17g" y)
          | None -> ())
        fig.series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render_chart ?(width = 64) ?(height = 20) fig =
  let tx v = if fig.xlog then log10 v else v in
  let ty v = if fig.ylog then log10 v else v in
  let usable (x, y) =
    (not (fig.xlog && x <= 0.0)) && not (fig.ylog && y <= 0.0)
  in
  let pts =
    List.concat_map
      (fun s -> List.filter usable s.points)
      fig.series
  in
  if pts = [] then "(no data)\n"
  else begin
    let xs = List.map (fun (x, _) -> tx x) pts in
    let ys = List.map (fun (_, y) -> ty y) pts in
    let fmin = List.fold_left Float.min infinity in
    let fmax = List.fold_left Float.max neg_infinity in
    let xmin = fmin xs and xmax = fmax xs in
    let ymin = fmin ys and ymax = fmax ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot gi (x, y) =
      let c =
        int_of_float
          (Float.round ((tx x -. xmin) /. xspan *. float_of_int (width - 1)))
      in
      let r =
        int_of_float
          (Float.round ((ty y -. ymin) /. yspan *. float_of_int (height - 1)))
      in
      let r = height - 1 - r in
      (* later series overwrite earlier ones at collisions; acceptable for
         an eyeball chart *)
      grid.(r).(c) <- glyphs.(gi mod Array.length glyphs)
    in
    List.iteri
      (fun gi s -> List.iter (fun p -> if usable p then plot gi p) s.points)
      fig.series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf fig.title;
    Buffer.add_char buf '\n';
    let ylab_hi = default_fmt (if fig.ylog then 10.0 ** ymax else ymax) in
    let ylab_lo = default_fmt (if fig.ylog then 10.0 ** ymin else ymin) in
    let margin = max (String.length ylab_hi) (String.length ylab_lo) in
    Array.iteri
      (fun r row ->
        let lab =
          if r = 0 then ylab_hi
          else if r = height - 1 then ylab_lo
          else ""
        in
        Buffer.add_string buf (Printf.sprintf "%*s |" margin lab);
        Buffer.add_string buf (String.init width (fun c -> row.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make (margin + 1) ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let xlab_lo = default_fmt (if fig.xlog then 10.0 ** xmin else xmin) in
    let xlab_hi = default_fmt (if fig.xlog then 10.0 ** xmax else xmax) in
    let axis = fig.xlabel ^ (if fig.xlog then " (log)" else "") in
    let mid_pad =
      max 1
        ((width - String.length xlab_lo - String.length xlab_hi
        - String.length axis)
        / 2)
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s%s%*s%s%*s%s\n" margin "" xlab_lo mid_pad "" axis
         mid_pad "" xlab_hi);
    Buffer.add_string buf "legend:";
    List.iteri
      (fun gi s ->
        Buffer.add_string buf
          (Printf.sprintf " %c=%s" glyphs.(gi mod Array.length glyphs) s.label))
      fig.series;
    Buffer.add_string buf
      (Printf.sprintf "  [y: %s%s]\n" fig.ylabel
         (if fig.ylog then ", log scale" else ""));
    Buffer.contents buf
  end

let to_json fig =
  let series_json s =
    Json.obj
      [
        ("label", Json.str s.label);
        ( "points",
          Json.arr
            (List.map
               (fun (x, y) -> Json.arr [ Json.num x; Json.num y ])
               s.points) );
      ]
  in
  Json.obj
    [
      ("title", Json.str fig.title);
      ("xlabel", Json.str fig.xlabel);
      ("ylabel", Json.str fig.ylabel);
      ("xlog", Json.bool fig.xlog);
      ("ylog", Json.bool fig.ylog);
      ("series", Json.arr (List.map series_json fig.series));
    ]
