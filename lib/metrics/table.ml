type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align array;
  mutable rows : row list;  (** reversed *)
  mutable nrows : int;
}

let create ?(align = []) headers =
  let n = List.length headers in
  if n = 0 then invalid_arg "Table.create: no headers";
  let aligns = Array.make n Right in
  List.iteri (fun i a -> if i < n then aligns.(i) <- a) align;
  { headers; aligns; rows = []; nrows = 0 }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows;
  t.nrows <- t.nrows + 1

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rows <- Separator :: t.rows
let row_count t = t.nrows
let headers t = t.headers

let rows t =
  List.rev
    (List.filter_map
       (function Cells c -> Some c | Separator -> None)
       t.rows)

let to_json t =
  let strs l = Json.arr (List.map Json.str l) in
  Json.obj
    [ ("headers", strs t.headers); ("rows", Json.arr (List.map strs (rows t))) ]

let widths t =
  let n = List.length t.headers in
  let w = Array.make n 0 in
  let feed cells =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
  in
  feed t.headers;
  List.iter (function Cells c -> feed c | Separator -> ()) t.rows;
  w

let pad align width s =
  let l = String.length s in
  if l >= width then s
  else
    let fill = width - l in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let lft = fill / 2 in
      String.make lft ' ' ^ s ^ String.make (fill - lft) ' '

let render t =
  let w = widths t in
  let buf = Buffer.create 512 in
  let line cells align_of =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (align_of i) w.(i) c))
      cells;
    (* trim trailing padding for tidy diffs *)
    let s = Buffer.contents buf in
    Buffer.clear buf;
    Buffer.add_string buf
      (String.concat "" [ (let l = ref (String.length s) in
                           while !l > 0 && s.[!l - 1] = ' ' do decr l done;
                           String.sub s 0 !l) ]);
    Buffer.add_char buf '\n'
  in
  let out = Buffer.create 1024 in
  let emit_line cells align_of =
    line cells align_of;
    Buffer.add_buffer out buf;
    Buffer.clear buf
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1))
    in
    Buffer.add_string out (String.make total '-');
    Buffer.add_char out '\n'
  in
  emit_line t.headers (fun i -> t.aligns.(i));
  rule ();
  List.iter
    (function
      | Cells c -> emit_line c (fun i -> t.aligns.(i))
      | Separator -> rule ())
    (List.rev t.rows);
  Buffer.contents out

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let buf = Buffer.create 512 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter
    (function Cells c -> line c | Separator -> ())
    (List.rev t.rows);
  Buffer.contents buf

let render_markdown t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  Buffer.add_string buf "|";
  Array.iteri
    (fun i width ->
      let dashes = String.make (max 3 width) '-' in
      let cell =
        match t.aligns.(i) with
        | Left -> ":" ^ dashes ^ " "
        | Right -> " " ^ dashes ^ ":"
        | Center -> ":" ^ dashes ^ ":"
      in
      Buffer.add_string buf cell;
      Buffer.add_string buf "|")
    w;
  Buffer.add_char buf '\n';
  List.iter
    (function Cells c -> line c | Separator -> ())
    (List.rev t.rows);
  Buffer.contents buf
