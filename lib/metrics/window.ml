(* Sliding-window statistics: a time-bucketed ring of slots, each
   covering width/slots of the time axis. A slot stores count/sum/
   min/max plus a log-bucketed histogram; queries merge the slots whose
   epoch is still inside the window ending at [now]. Time is always
   passed in by the caller — the module never reads a clock — so
   windowed metrics are deterministic and unit-testable. *)

type slot = {
  mutable epoch : int;  (* which slot-width interval this data is for *)
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  mutable hist : Histogram.t;
}

type t = {
  width : float;
  slots : slot array;
  slot_width : float;
  hist_base : float;
  hist_buckets : int;
}

let create ?(slots = 16) ?(hist_base = 1e-6) ?(hist_buckets = 48) ~width () =
  if width <= 0.0 then invalid_arg "Window.create: width <= 0";
  if slots < 2 then invalid_arg "Window.create: slots < 2";
  {
    width;
    slots =
      Array.init slots (fun _ ->
          {
            epoch = -1;
            count = 0;
            sum = 0.0;
            mn = infinity;
            mx = neg_infinity;
            hist = Histogram.create ~base:hist_base ~buckets:hist_buckets ();
          });
    slot_width = width /. float_of_int slots;
    hist_base;
    hist_buckets;
  }

let width t = t.width

let epoch_of t now = int_of_float (Float.floor (now /. t.slot_width))

let slot_for t epoch =
  let n = Array.length t.slots in
  let s = t.slots.(((epoch mod n) + n) mod n) in
  if s.epoch <> epoch then begin
    s.epoch <- epoch;
    s.count <- 0;
    s.sum <- 0.0;
    s.mn <- infinity;
    s.mx <- neg_infinity;
    s.hist <- Histogram.create ~base:t.hist_base ~buckets:t.hist_buckets ()
  end;
  s

let add t ~now v =
  if now < 0.0 then invalid_arg "Window.add: negative time";
  if v < 0.0 then invalid_arg "Window.add: negative sample";
  let s = slot_for t (epoch_of t now) in
  s.count <- s.count + 1;
  s.sum <- s.sum +. v;
  if v < s.mn then s.mn <- v;
  if v > s.mx then s.mx <- v;
  Histogram.add s.hist v

(* Live slots at [now]: epochs in (epoch(now) - slots, epoch(now)] —
   i.e. data newer than [width] ago, at slot granularity. *)
let fold_live t ~now ~init ~f =
  let cur = epoch_of t now in
  let n = Array.length t.slots in
  Array.fold_left
    (fun acc s ->
      if s.epoch >= 0 && s.epoch <= cur && s.epoch > cur - n then f acc s
      else acc)
    init t.slots

let observations t ~now = fold_live t ~now ~init:0 ~f:(fun a s -> a + s.count)
let sum t ~now = fold_live t ~now ~init:0.0 ~f:(fun a s -> a +. s.sum)

let mean t ~now =
  match observations t ~now with
  | 0 -> None
  | n -> Some (sum t ~now /. float_of_int n)

let minimum t ~now =
  let m = fold_live t ~now ~init:infinity ~f:(fun a s -> Float.min a s.mn) in
  if m = infinity then None else Some m

let maximum t ~now =
  let m =
    fold_live t ~now ~init:neg_infinity ~f:(fun a s -> Float.max a s.mx)
  in
  if m = neg_infinity then None else Some m

let rate t ~now = float_of_int (observations t ~now) /. t.width

let histogram t ~now =
  fold_live t ~now
    ~init:(Histogram.create ~base:t.hist_base ~buckets:t.hist_buckets ())
    ~f:(fun acc s -> Histogram.merge acc s.hist)

let quantile t ~now q =
  let h = histogram t ~now in
  if Histogram.count h = 0 then None else Some (Histogram.quantile h q)

let to_json t ~now =
  let open Json in
  obj
    [
      ("width", num t.width);
      ("slots", int (Array.length t.slots));
      ("observations", int (observations t ~now));
      ("sum", num (sum t ~now));
      ("mean", match mean t ~now with Some m -> num m | None -> Null);
      ("min", match minimum t ~now with Some m -> num m | None -> Null);
      ("max", match maximum t ~now with Some m -> num m | None -> Null);
      ("rate", num (rate t ~now));
      ( "p50",
        match quantile t ~now 0.5 with Some q -> num q | None -> Null );
      ( "p95",
        match quantile t ~now 0.95 with Some q -> num q | None -> Null );
      ( "p99",
        match quantile t ~now 0.99 with Some q -> num q | None -> Null );
    ]
