(** Log-bucketed histograms for latency-like quantities.

    Buckets are powers of two of a base unit, so the histogram covers many
    orders of magnitude with bounded memory — the standard layout for
    latency recording. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [create ?base ?buckets ()] makes an empty histogram whose bucket [i]
    holds samples in [[base * 2^i, base * 2^(i+1))]. Defaults: [base = 1.0],
    [buckets = 64]. Samples below [base] land in bucket 0; samples beyond
    the last bucket land in the last bucket (both are counted as clamped).
    @raise Invalid_argument if [buckets < 1] or [base <= 0.]. *)

val add : t -> float -> unit
(** Record one sample. Negative samples raise [Invalid_argument]. *)

val add_many : t -> float array -> unit

val count : t -> int
(** Total number of recorded samples. *)

val clamped : t -> int
(** Number of samples that fell outside the bucket range and were clamped. *)

val bucket_of : t -> float -> int
(** Index of the bucket a value would land in (after clamping). *)

val bucket_bounds : t -> int -> float * float
(** [bucket_bounds h i] is the [[lo, hi)] range of bucket [i]. *)

val counts : t -> int array
(** A copy of the per-bucket counts. *)

val quantile : t -> float -> float
(** [quantile h q] estimates the [q]-th quantile ([0. <= q <= 1.]) as the
    geometric midpoint of the bucket containing it.
    @raise Invalid_argument on an empty histogram or out-of-range [q]. *)

val merge : t -> t -> t
(** [merge a b] sums two histograms with identical geometry.
    @raise Invalid_argument if geometries differ. *)

val to_json : t -> Json.t
(** Full state (base, bucket count, per-bucket counts, total, clamped),
    suitable for embedding in a bench report. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; validates geometry and that the recorded
    total matches the sum of the buckets. *)

val render : ?width:int -> t -> string
(** ASCII rendering: one line per non-empty bucket with a proportional
    bar, suitable for terminal output. *)
