(* forkscan — count process-creation call sites in a real C tree, with
   the same scanner the E7 survey uses.

     forkscan path/to/source [more/paths...] *)

open Cmdliner

let paths_arg =
  let doc = "Files or directories to scan (.c/.h/.cc/.cpp/.hh)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)

let top_arg =
  let doc = "Also list the $(docv) files with the most creation-API call sites." in
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)

let print_top n paths =
  if n > 0 then begin
    let per_file = List.concat_map Forklore.Scanner.scan_directory_files paths in
    let ranked =
      List.filter (fun (_, r) -> Forklore.Scanner.total_hits r > 0) per_file
      |> List.sort (fun (_, a) (_, b) ->
             compare (Forklore.Scanner.total_hits b) (Forklore.Scanner.total_hits a))
    in
    let table =
      Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "file"; "call sites" ]
    in
    List.iteri
      (fun i (path, r) ->
        if i < n then
          Metrics.Table.add_row table
            [ path; string_of_int (Forklore.Scanner.total_hits r) ])
      ranked;
    Printf.printf "\ntop files:\n%s" (Metrics.Table.render table)
  end

let scan top paths =
  let table =
    Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "API"; "call sites" ]
  in
  let totals = Hashtbl.create 8 in
  let files = ref 0 and lines = ref 0 in
  List.iter
    (fun path ->
      let report = Forklore.Scanner.scan_directory path in
      files := !files + report.Forklore.Scanner.files_scanned;
      lines := !lines + report.Forklore.Scanner.total_lines;
      List.iter
        (fun (api, n) ->
          Hashtbl.replace totals api
            (n + Option.value ~default:0 (Hashtbl.find_opt totals api)))
        report.Forklore.Scanner.total)
    paths;
  List.iter
    (fun api ->
      Metrics.Table.add_row table
        [
          Forklore.Api.name api;
          string_of_int (Option.value ~default:0 (Hashtbl.find_opt totals api));
        ])
    Forklore.Api.all;
  Printf.printf "scanned %d files, %s lines\n%s" !files
    (Metrics.Units.count (float_of_int !lines))
    (Metrics.Table.render table);
  print_top top paths

let () =
  let doc = "count process-creation call sites in C source" in
  let info = Cmd.info "forkscan" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const scan $ top_arg $ paths_arg)))
