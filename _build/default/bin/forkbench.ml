(* forkbench — run the forkroad experiments from the command line.

     forkbench list
     forkbench run F1-SIM E3 --quick
     forkbench all *)

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick"; "q" ] ~doc:"Reduced sample counts/sweeps.")

let format_arg =
  let formats = [ ("text", `Text); ("csv", `Csv) ] in
  Arg.(
    value
    & opt (enum formats) `Text
    & info [ "format"; "f" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (tables + ASCII charts) or $(b,csv) \
              (machine-readable, for plotting).")

let run_experiments ~quick ~format exps =
  List.iter
    (fun exp ->
      let report = exp.Forkroad.Report.run ~quick in
      match format with
      | `Csv -> print_string (Forkroad.Report.render_csv report)
      | `Text ->
        print_string (Forkroad.Report.render report);
        Printf.printf "paper claim: %s\n\n" exp.Forkroad.Report.paper_claim)
    exps

let list_cmd =
  let doc = "List experiments (id, title, paper claim)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-7s %s\n        claim: %s\n" e.Forkroad.Report.exp_id
          e.Forkroad.Report.exp_title e.Forkroad.Report.paper_claim)
      Forkroad.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let ids_arg =
  let doc = "Experiment ids (see $(b,forkbench list))." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)

let run_cmd =
  let doc = "Run selected experiments." in
  let run quick format ids =
    let missing, found =
      List.partition_map
        (fun id ->
          match Forkroad.Registry.find id with
          | Some e -> Right e
          | None -> Left id)
        ids
    in
    match missing with
    | [] ->
      run_experiments ~quick ~format found;
      `Ok ()
    | _ ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment(s): %s (known: %s)"
            (String.concat ", " missing)
            (String.concat ", " Forkroad.Registry.ids) )
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run $ quick_flag $ format_arg $ ids_arg))

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick format = run_experiments ~quick ~format Forkroad.Registry.all in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ quick_flag $ format_arg)

let () =
  let doc = "reproduce the evaluation of 'A fork() in the road' (HotOS'19)" in
  let info = Cmd.info "forkbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd ]))
