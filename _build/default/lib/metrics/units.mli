(** Human-readable formatting of measurement units.

    All benchmark output in this repository goes through these helpers so
    that tables and figures use one consistent notation. *)

val ns : float -> string
(** [ns t] renders a duration of [t] nanoseconds with an adaptive unit
    (ns, us, ms, s) and three significant digits, e.g. [ns 12_340.0 =
    "12.3us"]. Negative durations keep their sign. *)

val cycles : float -> string
(** [cycles c] renders a simulated cycle count with an adaptive SI
    multiplier, e.g. [cycles 1.5e6 = "1.50Mcyc"]. *)

val bytes : int -> string
(** [bytes n] renders a byte count with binary multipliers
    (B, KiB, MiB, GiB, TiB), e.g. [bytes 1536 = "1.5KiB"]. *)

val count : float -> string
(** [count n] renders a dimensionless count with SI multipliers
    (k, M, G), e.g. [count 12_000.0 = "12.0k"]. *)

val ratio : float -> string
(** [ratio r] renders a speedup/ratio as e.g. ["3.42x"]. *)

val percent : float -> string
(** [percent p] renders a fraction [p] in [0,1] as e.g. ["37.5%"]. *)
