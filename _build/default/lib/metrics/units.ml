let sig3 v =
  (* three significant digits without scientific notation for the
     magnitudes we print (values are pre-scaled to [0, 1024)). *)
  let a = Float.abs v in
  if a >= 100.0 then Printf.sprintf "%.0f" v
  else if a >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let scaled v steps unit_of_last =
  let rec go v = function
    | [] -> (v, unit_of_last)
    | (limit, unit) :: rest ->
      if Float.abs v < limit then (v, unit) else go (v /. limit) rest
  in
  go v steps

let ns t =
  let v, u =
    scaled t [ (1000.0, "ns"); (1000.0, "us"); (1000.0, "ms") ] "s"
  in
  sig3 v ^ u

let cycles c =
  let v, u =
    scaled c [ (1000.0, "cyc"); (1000.0, "kcyc"); (1000.0, "Mcyc") ] "Gcyc"
  in
  sig3 v ^ u

let bytes n =
  let v, u =
    scaled (float_of_int n)
      [ (1024.0, "B"); (1024.0, "KiB"); (1024.0, "MiB"); (1024.0, "GiB") ]
      "TiB"
  in
  if u = "B" then Printf.sprintf "%dB" n else sig3 v ^ u

let count n =
  let v, u = scaled n [ (1000.0, ""); (1000.0, "k"); (1000.0, "M") ] "G" in
  if u = "" && Float.is_integer v then Printf.sprintf "%.0f" v
  else sig3 v ^ u

let ratio r = sig3 r ^ "x"
let percent p = sig3 (p *. 100.0) ^ "%"
