(** Minimal JSON values, writer and reader.

    The tree keeps no external dependencies, so machine-readable output
    (bench reports, kstat counter dumps, trace exports) shares this one
    hand-rolled implementation. The writer emits standard JSON; NaN and
    infinities become [null]. The reader accepts everything the writer
    produces (full JSON minus surrogate-pair [\u] escapes, which decode
    to ['?']). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Construction helpers} *)

val obj : (string * t) list -> t
val arr : t list -> t
val str : string -> t
val int : int -> t
val num : float -> t
val bool : bool -> t

(** {1 Writing} *)

val to_string : ?indent:int -> t -> string
(** [to_string ?indent v] renders [v]. [indent = 0] (default) is compact
    single-line output; positive values pretty-print with that many
    spaces per level. Integral floats print without a fraction (and thus
    re-read as [Int]); use {!to_num} when reading numbers back. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** {1 Reading} *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. The error string includes a byte
    offset. *)

val member : string -> t -> t option
(** Field of an object, [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option

val to_num : t -> float option
(** Numeric value as float; accepts both [Num] and [Int]. *)

val to_bool : t -> bool option
