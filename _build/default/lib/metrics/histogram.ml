type t = {
  base : float;
  nbuckets : int;
  counts : int array;
  mutable total : int;
  mutable clamped : int;
}

let create ?(base = 1.0) ?(buckets = 64) () =
  if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
  if base <= 0.0 then invalid_arg "Histogram.create: base <= 0";
  { base; nbuckets = buckets; counts = Array.make buckets 0; total = 0;
    clamped = 0 }

let raw_bucket t v =
  (* log2 of v/base, floored; bucket i covers [base*2^i, base*2^(i+1)) *)
  if v < t.base then -1
  else int_of_float (Float.floor (Float.log2 (v /. t.base)))

let bucket_of t v =
  let i = raw_bucket t v in
  if i < 0 then 0 else if i >= t.nbuckets then t.nbuckets - 1 else i

let add t v =
  if v < 0.0 then invalid_arg "Histogram.add: negative sample";
  let i = raw_bucket t v in
  if i < 0 || i >= t.nbuckets then t.clamped <- t.clamped + 1;
  let i = if i < 0 then 0 else if i >= t.nbuckets then t.nbuckets - 1 else i in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let add_many t a = Array.iter (add t) a
let count t = t.total
let clamped t = t.clamped

let bucket_bounds t i =
  if i < 0 || i >= t.nbuckets then invalid_arg "Histogram.bucket_bounds";
  (t.base *. (2.0 ** float_of_int i), t.base *. (2.0 ** float_of_int (i + 1)))

let counts t = Array.copy t.counts

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
  let target = q *. float_of_int t.total in
  let rec go i acc =
    if i >= t.nbuckets - 1 then i
    else begin
      let acc' = acc + t.counts.(i) in
      if float_of_int acc' >= target && acc' > 0 then i else go (i + 1) acc'
    end
  in
  let i = go 0 0 in
  let lo, hi = bucket_bounds t i in
  sqrt (lo *. hi)

let merge a b =
  if a.base <> b.base || a.nbuckets <> b.nbuckets then
    invalid_arg "Histogram.merge: geometry mismatch";
  let m = create ~base:a.base ~buckets:a.nbuckets () in
  for i = 0 to a.nbuckets - 1 do
    m.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  m.total <- a.total + b.total;
  m.clamped <- a.clamped + b.clamped;
  m

let to_json t =
  Json.obj
    [
      ("base", Json.num t.base);
      ("buckets", Json.int t.nbuckets);
      ("total", Json.int t.total);
      ("clamped", Json.int t.clamped);
      ("counts", Json.arr (Array.to_list (Array.map Json.int t.counts)));
    ]

let of_json jv =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "histogram: missing or ill-typed field" in
  let* base = Option.bind (Json.member "base" jv) Json.to_num in
  let* nbuckets = Option.bind (Json.member "buckets" jv) Json.to_int in
  let* total = Option.bind (Json.member "total" jv) Json.to_int in
  let* clamped = Option.bind (Json.member "clamped" jv) Json.to_int in
  let* counts = Option.bind (Json.member "counts" jv) Json.to_list in
  if nbuckets < 1 || base <= 0.0 then Error "histogram: bad geometry"
  else if List.length counts <> nbuckets then
    Error "histogram: counts length differs from bucket count"
  else begin
    let h = create ~base ~buckets:nbuckets () in
    let ok = ref true in
    List.iteri
      (fun i c ->
        match Json.to_int c with
        | Some c when c >= 0 -> h.counts.(i) <- c
        | Some _ | None -> ok := false)
      counts;
    if not !ok then Error "histogram: non-integer bucket count"
    else if total <> Array.fold_left ( + ) 0 h.counts then
      Error "histogram: total differs from sum of buckets"
    else begin
      h.total <- total;
      h.clamped <- clamped;
      Ok h
    end
  end

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let maxc = Array.fold_left max 0 t.counts in
  if maxc = 0 then Buffer.add_string buf "(empty histogram)\n"
  else
    for i = 0 to t.nbuckets - 1 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bucket_bounds t i in
        let bar = t.counts.(i) * width / maxc in
        Buffer.add_string buf
          (Printf.sprintf "[%10s, %10s) %8d %s\n" (Units.ns lo) (Units.ns hi)
             t.counts.(i)
             (String.make (max 1 bar) '#'))
      end
    done;
  Buffer.contents buf
