type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let obj fields = Obj fields
let arr items = Arr items
let str s = Str s
let int n = Int n
let num v = Num v
let bool b = Bool b

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must survive a round-trip and stay valid JSON: no "nan"/"inf"
   literals (mapped to null), integral values kept compact. *)
let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let sep_nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Num v -> Buffer.add_string buf (float_repr v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    sep_nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep_nl ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) item)
      items;
    sep_nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep_nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep_nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent > 0 then "\": " else "\":");
        write buf ~indent ~level:(level + 1) item)
      fields;
    sep_nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = 0) v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: full JSON minus \u surrogate pairs (non-ASCII escapes become
   '?'), enough for everything the emitter above produces. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  let skip_ws () =
    while
      !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r')
    do
      incr i
    done
  in
  let expect c =
    skip_ws ();
    if !i < n && s.[!i] = c then incr i
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
          if !i + 1 >= n then fail "dangling escape";
          (match s.[!i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !i + 5 >= n then fail "short \\u escape";
            let hex = String.sub s (!i + 2) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            i := !i + 4
          | _ -> fail "unknown escape");
          i := !i + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !i in
    if !i < n && s.[!i] = '-' then incr i;
    while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
      incr i
    done;
    let is_float = ref false in
    if !i < n && s.[!i] = '.' then begin
      is_float := true;
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end;
    if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
      is_float := true;
      incr i;
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end;
    let text = String.sub s start (!i - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some v -> Num v
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> (
        match float_of_string_opt text with
        | Some v -> Num v
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    if !i >= n then fail "unexpected end of input"
    else
      match s.[!i] with
      | '{' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = '}' then begin
          incr i;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            if !i < n && s.[!i] = ',' then begin
              incr i;
              members ()
            end
            else expect '}'
          in
          members ();
          Obj (List.rev !fields)
        end
      | '[' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = ']' then begin
          incr i;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            if !i < n && s.[!i] = ',' then begin
              incr i;
              elements ()
            end
            else expect ']'
          in
          elements ();
          Arr (List.rev !items)
        end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
      | _ -> fail "unexpected character"
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !i <> n then Error (Printf.sprintf "trailing garbage at offset %d" !i)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_num = function
  | Num v -> Some v
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
