(** ASCII/markdown table rendering for benchmark reports. *)

type align = Left | Right | Center

type t

val create : ?align:align list -> string list -> t
(** [create ?align headers] makes a table with the given column headers.
    [align] gives per-column alignment; missing entries default to
    [Right] (benchmark output is mostly numeric), extras are ignored.
    @raise Invalid_argument if [headers] is empty. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the arity differs from the
    header. *)

val add_rows : t -> string list list -> unit

val add_separator : t -> unit
(** Append a horizontal rule, rendered as a dashed line. *)

val row_count : t -> int
(** Number of data rows added so far (separators excluded). *)

val headers : t -> string list

val rows : t -> string list list
(** Data rows in insertion order (separators excluded). *)

val to_json : t -> Json.t
(** [{"headers": [...], "rows": [[...], ...]}]. *)

val render : t -> string
(** Box-drawing-free ASCII rendering with a header rule, columns padded
    per alignment and two-space gutters. Ends with a newline. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown rendering. Ends with a newline. *)

val render_csv : t -> string
(** CSV rendering (header + data rows; separators are skipped). *)
