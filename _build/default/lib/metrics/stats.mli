(** Descriptive statistics over float samples.

    A {!t} is an immutable summary computed once from a sample array; the
    benches compute one per (experiment, parameter) cell. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}

val of_array : float array -> t
(** [of_array samples] summarises [samples]. The input array is not
    modified. @raise Invalid_argument on an empty array. *)

val of_list : float list -> t
(** List version of {!of_array}. *)

val percentile : float array -> float -> float
(** [percentile sorted q] returns the [q]-th percentile ([0. <= q <=
    100.]) of an array sorted in increasing order, with linear
    interpolation between ranks. @raise Invalid_argument if the array is
    empty or [q] is out of range. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1); returns [0.] for singleton arrays.
    @raise Invalid_argument on an empty array. *)

val coefficient_of_variation : t -> float
(** [stddev /. mean]. Edge cases: all-equal samples have [stddev = 0.]
    and hence CV [0.] (provided the common value is non-zero); when the
    mean is exactly [0.] the ratio is undefined and the result is
    [nan]. *)

val to_json : t -> Json.t
(** All fields as a JSON object (used by the bench report writer). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. ["n=30 mean=1.2ms p50=1.1ms p99=2.0ms"],
    formatting values with {!Units.ns}. *)

val pp_raw : Format.formatter -> t -> unit
(** Like {!pp} but prints plain numbers rather than durations. *)
