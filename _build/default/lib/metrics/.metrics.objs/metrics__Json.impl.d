lib/metrics/json.ml: Buffer Char Float List Printf String
