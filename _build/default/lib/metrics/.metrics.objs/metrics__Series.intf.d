lib/metrics/series.mli:
