lib/metrics/series.mli: Json
