lib/metrics/stats.ml: Array Float Format Json Units
