lib/metrics/stats.ml: Array Float Format Units
