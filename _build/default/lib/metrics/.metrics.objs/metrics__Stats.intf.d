lib/metrics/stats.mli: Format
