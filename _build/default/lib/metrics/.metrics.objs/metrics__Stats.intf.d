lib/metrics/stats.mli: Format Json
