lib/metrics/series.ml: Array Buffer Float List Printf String Table
