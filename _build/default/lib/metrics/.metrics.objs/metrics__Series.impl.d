lib/metrics/series.ml: Array Buffer Float Json List Printf String Table
