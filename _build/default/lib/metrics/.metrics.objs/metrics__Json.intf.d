lib/metrics/json.mli:
