lib/metrics/table.ml: Array Buffer List String
