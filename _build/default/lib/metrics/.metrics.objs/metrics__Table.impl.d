lib/metrics/table.ml: Array Buffer Json List String
