lib/metrics/units.mli:
