lib/metrics/units.ml: Float Printf
