lib/metrics/table.mli:
