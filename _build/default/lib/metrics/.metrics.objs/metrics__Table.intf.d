lib/metrics/table.mli: Json
