lib/metrics/histogram.ml: Array Buffer Float Json List Option Printf String Units
