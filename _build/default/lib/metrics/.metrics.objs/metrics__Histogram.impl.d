lib/metrics/histogram.ml: Array Buffer Float Printf String Units
