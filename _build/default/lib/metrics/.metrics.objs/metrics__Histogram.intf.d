lib/metrics/histogram.mli:
