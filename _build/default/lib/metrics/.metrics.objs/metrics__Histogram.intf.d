lib/metrics/histogram.mli: Json
