type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if q < 0.0 || q > 100.0 then invalid_arg "Stats.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.stddev: empty array";
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

let of_array samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.of_array: empty array";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let total = Array.fold_left ( +. ) 0.0 sorted in
  {
    count = n;
    mean = total /. float_of_int n;
    stddev = stddev samples;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 50.0;
    p90 = percentile sorted 90.0;
    p99 = percentile sorted 99.0;
    total;
  }

let of_list l = of_array (Array.of_list l)

let coefficient_of_variation t =
  if t.mean = 0.0 then Float.nan else t.stddev /. t.mean

let to_json t =
  Json.obj
    [
      ("count", Json.int t.count);
      ("mean", Json.num t.mean);
      ("stddev", Json.num t.stddev);
      ("min", Json.num t.min);
      ("max", Json.num t.max);
      ("p50", Json.num t.p50);
      ("p90", Json.num t.p90);
      ("p99", Json.num t.p99);
      ("total", Json.num t.total);
    ]

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%s sd=%s min=%s p50=%s p90=%s p99=%s max=%s"
    t.count (Units.ns t.mean) (Units.ns t.stddev) (Units.ns t.min)
    (Units.ns t.p50) (Units.ns t.p90) (Units.ns t.p99) (Units.ns t.max)

let pp_raw ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    t.count t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
