type t =
  | Fork_exec
  | Vfork_exec
  | Posix_spawn
  | Fork_only
  | Fork_eager
  | Builder

let all = [ Fork_exec; Vfork_exec; Posix_spawn; Fork_only; Fork_eager; Builder ]

let name = function
  | Fork_exec -> "fork+exec"
  | Vfork_exec -> "vfork+exec"
  | Posix_spawn -> "posix_spawn"
  | Fork_only -> "fork-only"
  | Fork_eager -> "fork-eager"
  | Builder -> "procbuilder"

let supported_real = function
  | Fork_exec | Vfork_exec | Posix_spawn | Fork_only -> true
  | Fork_eager | Builder -> false

let of_name s = List.find_opt (fun t -> name t = s) all
let pp ppf t = Format.pp_print_string ppf (name t)
