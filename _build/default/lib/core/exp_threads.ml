(* E3 — fork is not thread-safe: probability that a fork child deadlocks
   on a mutex held by a non-forked thread, vs parent thread count. *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_threads: " ^ Ksim.Errno.to_string e)

(* One trial: [threads] workers contend a shared lock while the main
   thread forks (or spawns) a child that needs the same lock. Returns
   true when the run deadlocks. *)
let trial ~threads ~use_spawn ~seed =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.sched = `Random;
      seed;
      aslr = false;
    }
  in
  let body () =
    let m = Ksim.Api.mutex_create () in
    for _ = 1 to threads do
      ignore
        (ok_or_die
           (Ksim.Api.thread_create (fun () ->
                (* a worker that is sometimes inside the critical section,
                   like a thread mid-malloc on another CPU *)
                for _ = 1 to 4 do
                  ok_or_die (Ksim.Api.mutex_lock m);
                  Ksim.Api.yield ();
                  Ksim.Api.yield ();
                  ok_or_die (Ksim.Api.mutex_unlock m);
                  Ksim.Api.yield ()
                done)))
    done;
    Ksim.Api.yield ();
    Ksim.Api.yield ();
    let pid =
      if use_spawn then ok_or_die (Ksim.Api.spawn "/bin/true")
      else
        ok_or_die
          (Ksim.Api.fork ~child:(fun () ->
               (* the child needs the lock -- e.g. to malloc before exec *)
               ok_or_die (Ksim.Api.mutex_lock m);
               ok_or_die (Ksim.Api.mutex_unlock m);
               Ksim.Api.exit 0))
    in
    ignore (ok_or_die (Ksim.Api.wait_for pid))
  in
  let m = Sim_driver.run_scenario ~config body in
  match m.Sim_driver.outcome with
  | Ksim.Kernel.Stalled _ -> true
  | Ksim.Kernel.All_exited | Ksim.Kernel.Tick_limit -> false

(* Each trial boots its own kernel, so seeds fan out across domains;
   results come back in seed order, making the rate identical for any
   [jobs] (the Par determinism test exercises exactly this sweep). *)
let deadlock_rate ?jobs ~threads ~use_spawn ~trials () =
  let outcomes =
    Workload.Par.map ?jobs
      (fun seed -> trial ~threads ~use_spawn ~seed)
      (List.init trials (fun i -> i + 1))
  in
  let deadlocks = List.length (List.filter Fun.id outcomes) in
  float_of_int deadlocks /. float_of_int trials

let run ~quick =
  let trials = if quick then 30 else 200 in
  let thread_counts = if quick then [ 1; 4; 16 ] else Workload.Sweep.thread_counts in
  let series use_spawn label =
    {
      Metrics.Series.label;
      points =
        List.map
          (fun threads ->
            ( float_of_int threads,
              100.0 *. deadlock_rate ~threads ~use_spawn ~trials () ))
          thread_counts;
    }
  in
  let fig =
    Metrics.Series.figure
      ~title:"E3: child deadlock probability (%) vs parent thread count"
      ~xlabel:"threads" ~ylabel:"% deadlocked"
      [ series false "fork child"; series true "posix_spawn child" ]
  in
  Report.make ~id:"E3" ~title:"fork is not thread-safe"
    [
      Report.Figure fig;
      Report.Note
        (Printf.sprintf
           "%d randomized schedules per point; a deadlock is a run the \
            scheduler reports Stalled on the child's mutex_lock. fork \
            copies mutex memory verbatim, so a lock held by any \
            non-forked thread is orphaned in the child; spawn children \
            share no memory and can never inherit a held lock."
           trials);
    ]

let experiment =
  {
    Report.exp_id = "E3";
    exp_title = "fork is not thread-safe";
    paper_claim =
      "in a multithreaded parent, the child may deadlock on locks held \
       by threads that were not replicated; the hazard grows with \
       parallelism";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
