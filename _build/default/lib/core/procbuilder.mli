(** Typed wrapper over the simulator's cross-process operations — the
    clean-slate child-construction API the paper's §6 recommends
    (ExOS-style cross-process calls / Fuchsia's process_builder).

    Usage, from inside a simulated program:
    {[
      let* b = Procbuilder.create () in
      let* addr = Procbuilder.map b ~len ~perm:Vmem.Perm.rw in
      let* () = Procbuilder.write b ~addr "config" in
      let* () = Procbuilder.copy_fd b ~src:1 ~dst:1 in
      let* () = Procbuilder.start b "/bin/worker" in
      Api.wait_for (Procbuilder.pid b)
    ]}

    The parent names every piece of child state explicitly; nothing is
    inherited by accident, and the child needs no fork-style copy of the
    parent. *)

type t

val create : unit -> (t, Ksim.Errno.t) result
(** Make an embryo child (see {!Ksim.Sysreq.Pb_create}). *)

val pid : t -> Ksim.Types.pid
val map : t -> len:int -> perm:Vmem.Perm.t -> (int, Ksim.Errno.t) result
val write : t -> addr:int -> string -> (unit, Ksim.Errno.t) result
val copy_fd : t -> src:Ksim.Types.fd -> dst:Ksim.Types.fd -> (unit, Ksim.Errno.t) result

val copy_stdio : t -> (unit, Ksim.Errno.t) result
(** Copy fds 0, 1 and 2. *)

val start : t -> ?argv:string list -> string -> (unit, Ksim.Errno.t) result
(** Load the named program and start the child. The builder must not be
    used afterwards (further operations fail with EINVAL). *)

val spawn_minimal :
  ?argv:string list -> string -> (Ksim.Types.pid, Ksim.Errno.t) result
(** Convenience: create + copy_stdio + start. *)

val spawn_retrying :
  ?policy:Spawnlib.Retry.policy ->
  ?argv:string list ->
  string ->
  (Ksim.Types.pid, Ksim.Errno.t) result
(** {!spawn_minimal} under {!Spawnlib.Retry.with_policy} (default
    policy {!Spawnlib.Retry.default}): transient failures (EAGAIN,
    ENOMEM, EINTR) are retried with exponential backoff {e in simulated
    time} — each delay unit is a yielded scheduler slice, so waiting
    advances the sim clock and gives other processes a chance to free
    memory. Because every [start] failure rolls the embryo back to a
    clean state, the retry reuses nothing stale. Permanent errors and
    exhausted attempts return the last errno. *)
