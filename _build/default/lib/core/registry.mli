(** All experiments, in paper order. *)

val all : Report.experiment list
val find : string -> Report.experiment option
(** Lookup by id or slug, case-insensitive, '-' and '_' interchangeable
    ("f1", "F1-SIM", "fig1-sim", "e3", ...). *)

val ids : string list

val slug : Report.experiment -> string
(** Filename-friendly name ("fig1_sim", "cowtax", ...): the bench
    harness writes [BENCH_<slug>.json]. *)
