(** All experiments, in paper order. *)

val all : Report.experiment list
val find : string -> Report.experiment option
(** Lookup by id, case-insensitive ("f1", "F1-SIM", "e3", ...). *)

val ids : string list
