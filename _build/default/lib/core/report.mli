(** Experiment reports: the tables and figures the bench harness prints,
    one report per paper table/figure. *)

type block =
  | Table of { caption : string; table : Metrics.Table.t }
  | Figure of Metrics.Series.figure
  | Note of string

type t = {
  id : string;  (** experiment id, e.g. "F1" *)
  title : string;
  blocks : block list;
}

val make : id:string -> title:string -> block list -> t

val render : t -> string
(** Header, then each block: tables rendered via {!Metrics.Table.render},
    figures as data table {e and} ASCII chart, notes as prose. *)

val render_csv : t -> string
(** Machine-readable: every table and figure as a CSV block preceded by a
    ["# id caption"] comment line; notes are omitted. For piping into
    plotting scripts ([forkbench run F1 --format csv]). *)

(** A runnable experiment as registered in {!Registry}. *)
type experiment = {
  exp_id : string;
  exp_title : string;
  paper_claim : string;  (** what the paper says this should show *)
  run : quick:bool -> t;
      (** [quick] trades sample counts for speed (used by tests) *)
}
