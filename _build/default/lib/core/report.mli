(** Experiment reports: the tables and figures the bench harness prints,
    one report per paper table/figure. *)

type block =
  | Table of { caption : string; table : Metrics.Table.t }
  | Figure of Metrics.Series.figure
  | Note of string
  | Data of { name : string; json : Metrics.Json.t }
      (** machine-readable payload (raw series points, counter
          breakdowns): invisible in text and CSV renderings, included in
          {!to_json} — how [BENCH_*.json] carries per-point cost
          breakdowns without cluttering the terminal output *)

type t = {
  id : string;  (** experiment id, e.g. "F1" *)
  title : string;
  blocks : block list;
}

val make : id:string -> title:string -> block list -> t

val render : t -> string
(** Header, then each block: tables rendered via {!Metrics.Table.render},
    figures as data table {e and} ASCII chart, notes as prose; [Data]
    blocks are skipped. *)

val render_csv : t -> string
(** Machine-readable: every table and figure as a CSV block preceded by a
    ["# id caption"] comment line; notes and [Data] blocks are omitted.
    For piping into plotting scripts ([forkbench run F1 --format csv]). *)

val to_json : t -> Metrics.Json.t
(** The whole report, every block included:
    [{"id", "title", "blocks": [{"kind": "table"|"figure"|"note"|"data", ...}]}]. *)

(** How an experiment runs — used to pick which experiments the bench
    smoke alias can execute everywhere. *)
type kind =
  | Sim  (** deterministic, simulator-only: safe anywhere, any speed *)
  | Real  (** measures the host OS (real fork/spawn): environment-bound *)
  | Static  (** no execution at all (source-survey style) *)

val kind_string : kind -> string
(** ["sim"], ["real"] or ["static"]. *)

(** A runnable experiment as registered in {!Registry}. *)
type experiment = {
  exp_id : string;
  exp_title : string;
  paper_claim : string;  (** what the paper says this should show *)
  exp_kind : kind;
  run : quick:bool -> t;
      (** [quick] trades sample counts for speed (used by tests) *)
}
