(* T1 runs first: its real-OS samples measure the harness process itself,
   so it must precede the gigabyte footprints of F1 (allocator residue
   would otherwise inflate the "minimal process" numbers). *)
let all =
  [
    Exp_minproc.experiment;
    Exp_fig1.experiment;
    Exp_fig1_sim.experiment;
    Exp_cowtax.experiment;
    Exp_threads.experiment;
    Exp_stdio.experiment;
    Exp_aslr.experiment;
    Exp_overcommit.experiment;
    Exp_survey.experiment;
    Exp_vma.experiment;
    Exp_tlb.experiment;
    Exp_builder.experiment;
    Exp_snapshot.experiment;
    Exp_thp.experiment;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.Report.exp_id = id) all

let ids = List.map (fun e -> e.Report.exp_id) all
