(* E10 — the paper's §6 proposal: building a child with cross-process
   operations costs about the same as spawn and is immune to the
   parent's size, while matching fork's flexibility (the parent composes
   arbitrary child state explicitly). *)

let run ~quick =
  ignore quick;
  let strategies =
    [ Strategy.Fork_exec; Strategy.Vfork_exec; Strategy.Posix_spawn;
      Strategy.Builder ]
  in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "strategy"; "empty parent"; "256 MiB parent" ]
  in
  List.iter
    (fun s ->
      let at mib =
        Metrics.Units.ns
          (Sim_driver.creation_cost ~strategy:s ~heap_mib:mib ()).Sim_driver.ns
      in
      Metrics.Table.add_row table [ Strategy.name s; at 0; at 256 ])
    strategies;
  Report.make ~id:"E10" ~title:"cross-process operations (paper \xc2\xa76)"
    [
      Report.Table { caption = "create+wait cost (model ns)"; table };
      Report.Note
        "procbuilder = Pb_create + copy stdio fds + Pb_start: the child is \
         assembled piecewise by the parent, nothing is inherited \
         implicitly, and -- like spawn -- the cost does not depend on the \
         parent's footprint. Unlike spawn it can also pre-map memory and \
         write initial data into the child (Procbuilder.map/write), \
         covering fork's remaining legitimate uses.";
    ]

let experiment =
  {
    Report.exp_id = "E10";
    exp_title = "cross-process operations (paper \xc2\xa76)";
    paper_claim =
      "a clean-slate API builds children piecewise at spawn-like constant \
       cost, replacing fork without its hazards";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
