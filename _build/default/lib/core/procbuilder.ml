type t = { child : Ksim.Types.pid }

let create () = Result.map (fun child -> { child }) (Ksim.Api.pb_create ())
let pid t = t.child
let map t ~len ~perm = Ksim.Api.pb_map ~pid:t.child ~len ~perm
let write t ~addr data = Ksim.Api.pb_write ~pid:t.child ~addr data
let copy_fd t ~src ~dst = Ksim.Api.pb_copy_fd ~pid:t.child ~src ~dst

let copy_stdio t =
  let rec go = function
    | [] -> Ok ()
    | fd :: rest -> (
      match copy_fd t ~src:fd ~dst:fd with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go [ 0; 1; 2 ]

let start t ?argv path = Ksim.Api.pb_start ~pid:t.child ?argv path

let spawn_minimal ?argv path =
  match create () with
  | Error _ as e -> e
  | Ok b -> (
    match copy_stdio b with
    | Error e -> Error e
    | Ok () -> (
      match start b ?argv path with
      | Error e -> Error e
      | Ok () -> Ok (pid b)))

let transient = function
  | Ksim.Errno.EAGAIN | Ksim.Errno.ENOMEM | Ksim.Errno.EINTR -> true
  | _ -> false

(* Backoff in simulated time: each yield is a scheduler slice that
   charges syscall cost, so the delay both advances the simulated clock
   and lets other processes run (and possibly release memory). The
   policy's float delays are interpreted as slice counts. *)
let sim_sleep delay =
  for _ = 1 to max 1 (int_of_float (Float.ceil delay)) do
    Ksim.Api.yield ()
  done

let spawn_retrying ?(policy = Spawnlib.Retry.default) ?argv path =
  Spawnlib.Retry.with_policy policy ~sleep:sim_sleep ~should_retry:transient
    (fun ~attempt:_ -> spawn_minimal ?argv path)
