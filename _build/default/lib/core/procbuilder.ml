type t = { child : Ksim.Types.pid }

let create () = Result.map (fun child -> { child }) (Ksim.Api.pb_create ())
let pid t = t.child
let map t ~len ~perm = Ksim.Api.pb_map ~pid:t.child ~len ~perm
let write t ~addr data = Ksim.Api.pb_write ~pid:t.child ~addr data
let copy_fd t ~src ~dst = Ksim.Api.pb_copy_fd ~pid:t.child ~src ~dst

let copy_stdio t =
  let rec go = function
    | [] -> Ok ()
    | fd :: rest -> (
      match copy_fd t ~src:fd ~dst:fd with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go [ 0; 1; 2 ]

let start t ?argv path = Ksim.Api.pb_start ~pid:t.child ?argv path

let spawn_minimal ?argv path =
  match create () with
  | Error _ as e -> e
  | Ok b -> (
    match copy_stdio b with
    | Error e -> Error e
    | Ok () -> (
      match start b ?argv path with
      | Error e -> Error e
      | Ok () -> Ok (pid b)))
