type block =
  | Table of { caption : string; table : Metrics.Table.t }
  | Figure of Metrics.Series.figure
  | Note of string

type t = {
  id : string;
  title : string;
  blocks : block list;
}

let make ~id ~title blocks = { id; title; blocks }

let render t =
  let buf = Buffer.create 2048 in
  let rule = String.make 72 '=' in
  Buffer.add_string buf
    (Printf.sprintf "%s\n[%s] %s\n%s\n" rule t.id t.title rule);
  List.iter
    (fun block ->
      Buffer.add_char buf '\n';
      match block with
      | Table { caption; table } ->
        Buffer.add_string buf (caption ^ "\n");
        Buffer.add_string buf (Metrics.Table.render table)
      | Figure fig ->
        Buffer.add_string buf (Metrics.Series.render_table fig);
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Metrics.Series.render_chart fig)
      | Note note -> Buffer.add_string buf ("note: " ^ note ^ "\n"))
    t.blocks;
  Buffer.contents buf

let render_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun block ->
      match block with
      | Table { caption; table } ->
        Buffer.add_string buf (Printf.sprintf "# %s %s\n" t.id caption);
        Buffer.add_string buf (Metrics.Table.render_csv table);
        Buffer.add_char buf '\n'
      | Figure fig ->
        Buffer.add_string buf (Printf.sprintf "# %s %s\n" t.id fig.Metrics.Series.title);
        Buffer.add_string buf (Metrics.Series.render_csv fig);
        Buffer.add_char buf '\n'
      | Note _ -> ())
    t.blocks;
  Buffer.contents buf

type experiment = {
  exp_id : string;
  exp_title : string;
  paper_claim : string;
  run : quick:bool -> t;
}
