type block =
  | Table of { caption : string; table : Metrics.Table.t }
  | Figure of Metrics.Series.figure
  | Note of string
  | Data of { name : string; json : Metrics.Json.t }

type t = {
  id : string;
  title : string;
  blocks : block list;
}

let make ~id ~title blocks = { id; title; blocks }

let render t =
  let buf = Buffer.create 2048 in
  let rule = String.make 72 '=' in
  Buffer.add_string buf
    (Printf.sprintf "%s\n[%s] %s\n%s\n" rule t.id t.title rule);
  List.iter
    (fun block ->
      match block with
      | Table { caption; table } ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (caption ^ "\n");
        Buffer.add_string buf (Metrics.Table.render table)
      | Figure fig ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Metrics.Series.render_table fig);
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Metrics.Series.render_chart fig)
      | Note note ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf ("note: " ^ note ^ "\n")
      | Data _ -> ())
    t.blocks;
  Buffer.contents buf

let render_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun block ->
      match block with
      | Table { caption; table } ->
        Buffer.add_string buf (Printf.sprintf "# %s %s\n" t.id caption);
        Buffer.add_string buf (Metrics.Table.render_csv table);
        Buffer.add_char buf '\n'
      | Figure fig ->
        Buffer.add_string buf (Printf.sprintf "# %s %s\n" t.id fig.Metrics.Series.title);
        Buffer.add_string buf (Metrics.Series.render_csv fig);
        Buffer.add_char buf '\n'
      | Note _ | Data _ -> ())
    t.blocks;
  Buffer.contents buf

let block_json = function
  | Table { caption; table } ->
    Metrics.Json.obj
      [
        ("kind", Metrics.Json.str "table");
        ("caption", Metrics.Json.str caption);
        ("table", Metrics.Table.to_json table);
      ]
  | Figure fig ->
    Metrics.Json.obj
      [
        ("kind", Metrics.Json.str "figure");
        ("figure", Metrics.Series.to_json fig);
      ]
  | Note note ->
    Metrics.Json.obj
      [ ("kind", Metrics.Json.str "note"); ("text", Metrics.Json.str note) ]
  | Data { name; json } ->
    Metrics.Json.obj
      [
        ("kind", Metrics.Json.str "data");
        ("name", Metrics.Json.str name);
        ("data", json);
      ]

let to_json t =
  Metrics.Json.obj
    [
      ("id", Metrics.Json.str t.id);
      ("title", Metrics.Json.str t.title);
      ("blocks", Metrics.Json.arr (List.map block_json t.blocks));
    ]

type kind = Sim | Real | Static

let kind_string = function Sim -> "sim" | Real -> "real" | Static -> "static"

type experiment = {
  exp_id : string;
  exp_title : string;
  paper_claim : string;
  exp_kind : kind;
  run : quick:bool -> t;
}
