let child_prog = "/bin/true"
let argv = [ "true" ]

let fail_errno what e =
  failwith
    (Printf.sprintf "Real_driver: %s failed: %s" what
       (Spawnlib.Native.errno_message e))

let wait pid = ignore (Spawnlib.Native.wait_exit pid)

let creation_once = function
  | Strategy.Fork_exec -> (
    match Spawnlib.Native.fork_exec ~prog:child_prog ~argv () with
    | Ok pid -> wait pid
    | Error e -> fail_errno "fork_exec" e)
  | Strategy.Vfork_exec -> (
    match Spawnlib.Native.vfork_exec ~prog:child_prog ~argv () with
    | Ok pid -> wait pid
    | Error e -> fail_errno "vfork_exec" e)
  | Strategy.Posix_spawn -> (
    match Spawnlib.Native.posix_spawn ~prog:child_prog ~argv () with
    | Ok pid -> wait pid
    | Error e -> fail_errno "posix_spawn" e)
  | Strategy.Fork_only -> (
    match Spawnlib.Native.fork_exit () with
    | Ok pid -> wait pid
    | Error e -> fail_errno "fork_exit" e)
  | (Strategy.Fork_eager | Strategy.Builder) as s ->
    failwith
      (Printf.sprintf "Real_driver: %s has no real-OS implementation"
         (Strategy.name s))

let creation_stats ~strategy ~samples =
  let samples =
    Workload.Timer.sample ~warmup:2 ~n:samples (fun () -> creation_once strategy)
  in
  Metrics.Stats.of_array samples
