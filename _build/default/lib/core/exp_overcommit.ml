(* E6 — fork forces the overcommit choice: under strict commit
   accounting a big parent cannot fork at all (even though COW would copy
   almost nothing); admitting the fork requires overcommitting memory. *)

let phys_pages = 262_144 (* 1 GiB machine *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_overcommit: " ^ Ksim.Errno.to_string e)

(* Does a parent using [fraction] of physical memory manage to fork? *)
let try_fork ~policy ~fraction =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages;
      commit_policy = policy;
      aslr = false;
    }
  in
  let forked = ref false in
  let init =
    Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () ->
        let len =
          Vmem.Addr.page_size
          * int_of_float (fraction *. float_of_int phys_pages)
        in
        ignore (ok_or_die (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw));
        match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
        | Ok pid ->
          forked := true;
          ignore (ok_or_die (Ksim.Api.wait_for pid))
        | Error _ -> ())
  in
  let t = Ksim.Kernel.create ~config () in
  Ksim.Kernel.register t init;
  ignore (ok_or_die (Ksim.Kernel.spawn_init t "/sbin/init"));
  ignore (Ksim.Kernel.run t);
  !forked

let run ~quick =
  let fractions = if quick then [ 0.3; 0.6 ] else [ 0.1; 0.3; 0.45; 0.6; 0.9 ] in
  let table =
    Metrics.Table.create
      [ "parent footprint"; "fork (strict)"; "fork (overcommit)" ]
  in
  let rows =
    Workload.Par.map
      (fun f ->
        ( f,
          try_fork ~policy:Vmem.Frame.Strict ~fraction:f,
          try_fork ~policy:Vmem.Frame.Overcommit ~fraction:f ))
      fractions
  in
  List.iter
    (fun (f, strict_ok, over_ok) ->
      let show ok = if ok then "ok" else "ENOMEM" in
      Metrics.Table.add_row table
        [ Metrics.Units.percent f; show strict_ok; show over_ok ])
    rows;
  Report.make ~id:"E6" ~title:"fork forces memory overcommit"
    [
      Report.Table
        { caption = "1 GiB machine; parent mmaps the given share and forks";
          table };
      Report.Note
        "strict accounting must reserve the parent's full commit again for \
         the child, so fork fails once the parent passes half of memory; \
         the only way to keep fork working is to overcommit -- trading \
         deterministic failure at fork() for later OOM kills, exactly the \
         policy knot the paper pins on fork.";
    ]

let experiment =
  {
    Report.exp_id = "E6";
    exp_title = "fork forces memory overcommit";
    paper_claim =
      "a process using more than half of memory cannot fork under strict \
       commit accounting; supporting fork pushes systems into overcommit";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
