(* E12 (ablation) — transparent huge pages vs fork.

   Our real Figure-1 run shows an artifact the paper's era predates at
   this scale: the 1 GiB fork is FASTER than the 256 MiB one, because the
   kernel transparently backs the large uniform allocation with 2 MiB
   pages, dividing the number of PTEs fork must copy by 512. This
   experiment models THP as a cost-parameter change (per-512-pages PTE
   and table-page work) and regenerates the Figure-1 sweep under both
   regimes — showing that THP flattens, but does not remove, fork's
   dependence on parent size. *)

let thp_params =
  let p = Vmem.Cost.default in
  {
    p with
    Vmem.Cost.pte_copy = p.Vmem.Cost.pte_copy /. 512.0;
    pt_node_copy = p.Vmem.Cost.pt_node_copy /. 512.0;
  }

let creation_ns ?params ~heap_mib () =
  let config =
    { (Sim_driver.config_for ~heap_mib) with Ksim.Kernel.cost_params = params }
  in
  let scenario ~create () =
    Sim_driver.with_footprint ~heap_mib ~vmas:1 ();
    if create then begin
      match
        Ksim.Api.fork ~child:(fun () ->
            (match Ksim.Api.exec "/bin/true" with Ok () | Error _ -> ());
            Ksim.Api.exit 127)
      with
      | Ok pid -> (
        match Ksim.Api.wait_for pid with
        | Ok _ -> ()
        | Error e -> invalid_arg ("Exp_thp: wait: " ^ Ksim.Errno.to_string e))
      | Error e -> invalid_arg ("Exp_thp: fork: " ^ Ksim.Errno.to_string e)
    end
  in
  let with_op = Sim_driver.run_scenario ~config (scenario ~create:true) in
  let base = Sim_driver.run_scenario ~config (scenario ~create:false) in
  Vmem.Cost.cycles_to_ns (with_op.Sim_driver.cycles -. base.Sim_driver.cycles)

let run ~quick =
  let sizes = if quick then [ 0; 256 ] else [ 0; 16; 64; 256; 1024; 4096 ] in
  let series label params =
    {
      Metrics.Series.label;
      points =
        List.map
          (fun mib -> (float_of_int mib, creation_ns ?params ~heap_mib:mib ()))
          sizes;
    }
  in
  let fig =
    Metrics.Series.figure ~ylog:true
      ~title:"E12: fork+exec cost (model ns) vs footprint, 4 KiB vs THP"
      ~xlabel:"MiB" ~ylabel:"ns"
      [ series "4 KiB pages" None; series "2 MiB pages (THP)" (Some thp_params) ]
  in
  Report.make ~id:"E12" ~title:"ablation: transparent huge pages vs fork"
    [
      Report.Figure fig;
      Report.Note
        "THP divides fork's per-page work by 512 and flattens the curve \
         dramatically -- which is exactly the artifact our real F1 run \
         shows between 256 MiB and 1 GiB (see EXPERIMENTS.md). The \
         dependence on parent size remains (it reappears 512x further \
         out), and THP does nothing for fork's semantic hazards; it is a \
         kernel-side mitigation of exactly the cost the paper attacks.";
    ]

let experiment =
  {
    Report.exp_id = "E12";
    exp_title = "ablation: transparent huge pages vs fork";
    paper_claim =
      "kernels invest heavily (THP, lazy copying) to keep fork viable; \
       mitigations shift but do not remove the parent-size dependence";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
