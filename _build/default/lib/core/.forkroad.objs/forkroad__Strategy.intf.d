lib/core/strategy.mli: Format
