lib/core/procbuilder.ml: Ksim Result
