lib/core/procbuilder.ml: Float Ksim Result Spawnlib
