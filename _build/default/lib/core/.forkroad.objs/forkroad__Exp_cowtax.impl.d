lib/core/exp_cowtax.ml: Ksim List Metrics Printf Report Sim_driver Vmem Workload
