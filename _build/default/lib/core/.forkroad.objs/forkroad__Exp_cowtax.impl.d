lib/core/exp_cowtax.ml: Ksim List Metrics Option Printf Report Sim_driver Vmem Workload
