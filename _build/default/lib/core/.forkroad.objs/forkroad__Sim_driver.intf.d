lib/core/sim_driver.mli: Ksim Strategy Vmem
