lib/core/exp_fig1.ml: Gc List Metrics Printf Real_driver Report Strategy Sys Workload
