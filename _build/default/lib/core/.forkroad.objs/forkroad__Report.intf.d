lib/core/report.mli: Metrics
