lib/core/exp_builder.ml: List Metrics Report Sim_driver Strategy
