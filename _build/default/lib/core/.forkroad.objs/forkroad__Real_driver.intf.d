lib/core/real_driver.mli: Metrics Strategy
