lib/core/report.ml: Buffer List Metrics Printf String
