lib/core/registry.ml: Char Exp_aslr Exp_builder Exp_cowtax Exp_fig1 Exp_fig1_sim Exp_minproc Exp_overcommit Exp_snapshot Exp_stdio Exp_survey Exp_thp Exp_threads Exp_tlb Exp_vma List Report String
