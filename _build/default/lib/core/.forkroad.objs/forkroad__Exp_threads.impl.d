lib/core/exp_threads.ml: Ksim List Metrics Printf Report Sim_driver Workload
