lib/core/exp_threads.ml: Fun Ksim List Metrics Printf Report Sim_driver Workload
