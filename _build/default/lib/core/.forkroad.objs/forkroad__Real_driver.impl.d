lib/core/real_driver.ml: Metrics Printf Spawnlib Strategy Workload
