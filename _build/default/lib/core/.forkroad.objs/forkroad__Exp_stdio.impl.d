lib/core/exp_stdio.ml: Ksim List Metrics Option Report Sim_driver String
