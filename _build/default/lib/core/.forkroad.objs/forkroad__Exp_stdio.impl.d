lib/core/exp_stdio.ml: Ksim List Metrics Report Sim_driver String
