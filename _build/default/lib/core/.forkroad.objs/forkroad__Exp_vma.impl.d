lib/core/exp_vma.ml: Metrics Printf Report Sim_driver Strategy Workload
