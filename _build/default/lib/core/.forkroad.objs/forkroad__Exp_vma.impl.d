lib/core/exp_vma.ml: List Metrics Printf Report Sim_driver Strategy Workload
