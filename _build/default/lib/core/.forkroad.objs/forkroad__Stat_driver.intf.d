lib/core/stat_driver.mli: Ksim Report
