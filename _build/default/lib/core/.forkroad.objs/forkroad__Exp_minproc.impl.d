lib/core/exp_minproc.ml: List Metrics Real_driver Report Sim_driver Strategy
