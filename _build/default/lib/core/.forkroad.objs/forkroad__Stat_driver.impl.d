lib/core/stat_driver.ml: Format Ksim List Metrics Option Printf Report Sim_driver String Vmem Workload
