lib/core/exp_survey.ml: Forklore List Metrics Printf Report
