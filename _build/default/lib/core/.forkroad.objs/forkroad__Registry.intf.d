lib/core/registry.mli: Report
