lib/core/exp_aslr.ml: Float Hashtbl Ksim List Metrics Option Printf Report Sim_driver String Vmem
