lib/core/exp_fig1_sim.ml: List Metrics Option Report Sim_driver Strategy Workload
