lib/core/exp_fig1_sim.ml: List Metrics Report Sim_driver Strategy Workload
