lib/core/exp_snapshot.ml: Ksim List Metrics Report Sim_driver Strategy Vmem Workload
