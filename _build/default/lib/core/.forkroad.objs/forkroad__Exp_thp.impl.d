lib/core/exp_thp.ml: Ksim List Metrics Report Sim_driver Vmem
