lib/core/exp_tlb.ml: List Metrics Option Printf Report Sim_driver Strategy Workload
