lib/core/sim_driver.ml: Domain Hashtbl Ksim List Option Procbuilder Strategy String Vmem Workload
