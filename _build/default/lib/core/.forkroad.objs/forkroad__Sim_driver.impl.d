lib/core/sim_driver.ml: Hashtbl Ksim List Option Procbuilder Strategy String Vmem Workload
