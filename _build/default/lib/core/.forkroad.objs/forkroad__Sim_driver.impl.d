lib/core/sim_driver.ml: Ksim List Option Procbuilder Strategy Vmem Workload
