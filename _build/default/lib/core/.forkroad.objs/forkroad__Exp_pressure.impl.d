lib/core/exp_pressure.ml: Ksim List Metrics Option Printf Procbuilder Report Sim_driver Vmem Workload
