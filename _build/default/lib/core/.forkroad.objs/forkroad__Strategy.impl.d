lib/core/strategy.ml: Format List
