lib/core/procbuilder.mli: Ksim Spawnlib Vmem
