lib/core/procbuilder.mli: Ksim Vmem
