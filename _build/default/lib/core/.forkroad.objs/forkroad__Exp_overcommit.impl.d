lib/core/exp_overcommit.ml: Ksim List Metrics Report Vmem Workload
