(** Wall-clock measurements on the real OS.

    Each sample is one create+wait of [/bin/true] (or an
    immediately-exiting fork child for [Fork_only]) performed by the
    calling process, whose memory footprint the caller controls with
    {!Workload.Footprint}. This is the measured half of the Figure-1
    reproduction. *)

val child_prog : string
(** "/bin/true" *)

val creation_once : Strategy.t -> unit
(** One create+wait. @raise Failure if the strategy is unsupported on
    the real OS ({!Strategy.supported_real}) or creation fails. *)

val creation_stats : strategy:Strategy.t -> samples:int -> Metrics.Stats.t
(** Latency distribution (nanoseconds) over [samples] runs, after a
    short warmup. *)
