(* E7 — usage survey: process-creation call sites across a corpus. *)

let corpus_seed = 2019
let corpus_size = 500

let run ~quick =
  let packages = if quick then 100 else corpus_size in
  let pkgs = Forklore.Corpus.generate ~packages ~seed:corpus_seed () in
  (match Forklore.Survey.validate pkgs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exp_survey: scanner mismatch: " ^ msg));
  let rows = Forklore.Survey.of_packages pkgs in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "API"; "packages using"; "share"; "call sites" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          Forklore.Api.name r.Forklore.Survey.api;
          string_of_int r.Forklore.Survey.packages_using;
          Metrics.Units.percent r.Forklore.Survey.package_share;
          string_of_int r.Forklore.Survey.call_sites;
        ])
    rows;
  Report.make ~id:"E7" ~title:"creation-API usage survey"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "synthetic %d-package corpus (seed %d), scanner validated \
               against embedded ground truth"
              packages corpus_seed;
          table;
        };
      Report.Note
        "the corpus mix encodes the paper's observation: fork-family idioms \
         (fork, system, popen) dominate Unix code while posix_spawn \
         adoption is rare. Run `forkscan <dir>` to apply the same scanner \
         to any real C tree.";
    ]

let experiment =
  {
    Report.exp_id = "E7";
    exp_title = "creation-API usage survey";
    paper_claim =
      "fork remains the overwhelmingly dominant creation API in Unix \
       code; spawn-style APIs are rarely used";
    exp_kind = Report.Static;
    run = (fun ~quick -> run ~quick);
  }
