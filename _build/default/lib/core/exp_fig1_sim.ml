(* F1-SIM — the Figure-1 sweep on the simulator, deterministic and
   extended beyond this machine's RAM. *)

let strategies = [ Strategy.Fork_exec; Strategy.Vfork_exec; Strategy.Posix_spawn ]

let run ~quick =
  let sizes = if quick then [ 0; 16; 256 ] else Workload.Sweep.fig1_sim_mib in
  let rows =
    List.map
      (fun mib ->
        ( mib,
          List.map
            (fun s -> (s, Sim_driver.creation_cost ~strategy:s ~heap_mib:mib ()))
            strategies ))
      sizes
  in
  let series_of strategy =
    {
      Metrics.Series.label = Strategy.name strategy;
      points =
        List.map
          (fun (mib, ms) ->
            (float_of_int mib, (List.assoc strategy ms).Sim_driver.ns))
          rows;
    }
  in
  let fig =
    Metrics.Series.figure ~ylog:true
      ~title:
        "F1-SIM: create+exec cost (model ns) vs parent footprint (MiB) \
         [simulator]"
      ~xlabel:"MiB" ~ylabel:"ns" (List.map series_of strategies)
  in
  Report.make ~id:"F1-SIM"
    ~title:"Figure 1 (simulator): creation cost vs parent footprint"
    [
      Report.Figure fig;
      Report.Note
        "deterministic cycle model (Vmem.Cost), differential measurement; \
         the fork+exec series grows with the page-table copy while spawn \
         and vfork pay only the constant image-load cost.";
    ]

let experiment =
  {
    Report.exp_id = "F1-SIM";
    exp_title = "Figure 1 (simulator): creation cost vs parent footprint";
    paper_claim =
      "same shape as F1, extended to footprints beyond physical RAM: the \
       mechanism (page-table copy) is linear in the parent, spawn is \
       constant";
    run = (fun ~quick -> run ~quick);
  }
