(* E9 (ablation) — where the cycles go: COW fork vs eager-copy fork vs
   spawn, with the TLB work fork's write-protection forces made
   explicit. *)

let heap_mib = 64

let category_sum breakdown prefix =
  List.fold_left
    (fun acc (cat, c) ->
      if String.length cat >= String.length prefix
         && String.sub cat 0 (String.length prefix) = prefix
      then acc +. c
      else acc)
    0.0 breakdown

let run ~quick =
  ignore quick;
  let strategies =
    [ Strategy.Fork_only; Strategy.Fork_eager; Strategy.Posix_spawn ]
  in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "strategy"; "total"; "pt copy"; "page copy"; "tlb"; "exec load" ]
  in
  List.iter
    (fun s ->
      let m = Sim_driver.creation_cost ~strategy:s ~heap_mib () in
      let b = m.Sim_driver.breakdown in
      let pick cat = Option.value ~default:0.0 (List.assoc_opt cat b) in
      Metrics.Table.add_row table
        [
          Strategy.name s;
          Metrics.Units.cycles m.Sim_driver.cycles;
          Metrics.Units.cycles (pick "fork:pt-node" +. pick "fork:pte");
          Metrics.Units.cycles (pick "fork:eager-copy" +. pick "fault:cow-copy");
          Metrics.Units.cycles (category_sum b "tlb:");
          Metrics.Units.cycles (category_sum b "exec:");
        ])
    strategies;
  Report.make ~id:"E9" ~title:"ablation: COW vs eager copy vs spawn"
    [
      Report.Table
        {
          caption =
            Printf.sprintf "cycle breakdown creating a child of a %d MiB parent"
              heap_mib;
          table;
        };
      Report.Note
        "COW trades the eager page copy for page-table work plus a \
         mandatory TLB shootdown of the parent (every writable PTE is \
         downgraded); eager copy avoids later faults but pays the full \
         memory copy up front; spawn pays neither -- only the constant \
         image load.";
    ]

let experiment =
  {
    Report.exp_id = "E9";
    exp_title = "ablation: COW vs eager copy vs spawn";
    paper_claim =
      "supporting fork efficiently is what drags COW machinery and TLB \
       shootdowns into the kernel's memory subsystem";
    run = (fun ~quick -> run ~quick);
  }
