(** Process-creation strategies compared throughout the evaluation. *)

type t =
  | Fork_exec  (** classic fork + execve *)
  | Vfork_exec  (** vfork + execve (borrowed address space) *)
  | Posix_spawn
  | Fork_only  (** fork, child exits immediately: isolates the AS copy *)
  | Fork_eager  (** simulator ablation: fork with eager page copying *)
  | Builder  (** simulator: cross-process operations (paper §6) *)

val all : t list
val name : t -> string

val supported_real : t -> bool
(** Whether the real-OS driver can measure it (eager-copy fork and
    cross-process builds have no Linux equivalent). *)

val of_name : string -> t option
val pp : Format.formatter -> t -> unit
