type t = {
  capacity : int;
  queue : Buffer.t;
  mutable read_pos : int;  (** consumed prefix of [queue] *)
  mutable readers : int;
  mutable writers : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Pipe.create: capacity <= 0";
  { capacity; queue = Buffer.create 256; read_pos = 0; readers = 0; writers = 0 }

let capacity t = t.capacity
let available t = Buffer.length t.queue - t.read_pos
let space t = t.capacity - available t
let readers t = t.readers
let writers t = t.writers
let add_reader t = t.readers <- t.readers + 1
let add_writer t = t.writers <- t.writers + 1
let drop_reader t = t.readers <- max 0 (t.readers - 1)
let drop_writer t = t.writers <- max 0 (t.writers - 1)

(* Compact the buffer once the consumed prefix dominates, so long-lived
   pipes don't grow without bound. *)
let compact t =
  if t.read_pos > 4096 && t.read_pos * 2 > Buffer.length t.queue then begin
    let rest = Buffer.sub t.queue t.read_pos (available t) in
    Buffer.clear t.queue;
    Buffer.add_string t.queue rest;
    t.read_pos <- 0
  end

let write t s =
  let n = min (String.length s) (space t) in
  Buffer.add_substring t.queue s 0 n;
  n

let read t n =
  let n = min n (available t) in
  if n <= 0 then ""
  else begin
    let s = Buffer.sub t.queue t.read_pos n in
    t.read_pos <- t.read_pos + n;
    compact t;
    s
  end

let eof t = available t = 0 && t.writers = 0
let broken t = t.readers = 0
