type t =
  | SIGHUP
  | SIGINT
  | SIGQUIT
  | SIGILL
  | SIGABRT
  | SIGFPE
  | SIGKILL
  | SIGSEGV
  | SIGPIPE
  | SIGALRM
  | SIGTERM
  | SIGUSR1
  | SIGUSR2
  | SIGCHLD
  | SIGCONT
  | SIGSTOP

let all =
  [
    SIGHUP; SIGINT; SIGQUIT; SIGILL; SIGABRT; SIGFPE; SIGKILL; SIGSEGV;
    SIGPIPE; SIGALRM; SIGTERM; SIGUSR1; SIGUSR2; SIGCHLD; SIGCONT; SIGSTOP;
  ]

let number = function
  | SIGHUP -> 1
  | SIGINT -> 2
  | SIGQUIT -> 3
  | SIGILL -> 4
  | SIGABRT -> 6
  | SIGFPE -> 8
  | SIGKILL -> 9
  | SIGSEGV -> 11
  | SIGPIPE -> 13
  | SIGALRM -> 14
  | SIGTERM -> 15
  | SIGUSR1 -> 10
  | SIGUSR2 -> 12
  | SIGCHLD -> 17
  | SIGCONT -> 18
  | SIGSTOP -> 19

let of_number n = List.find_opt (fun s -> number s = n) all

let to_string = function
  | SIGHUP -> "SIGHUP"
  | SIGINT -> "SIGINT"
  | SIGQUIT -> "SIGQUIT"
  | SIGILL -> "SIGILL"
  | SIGABRT -> "SIGABRT"
  | SIGFPE -> "SIGFPE"
  | SIGKILL -> "SIGKILL"
  | SIGSEGV -> "SIGSEGV"
  | SIGPIPE -> "SIGPIPE"
  | SIGALRM -> "SIGALRM"
  | SIGTERM -> "SIGTERM"
  | SIGUSR1 -> "SIGUSR1"
  | SIGUSR2 -> "SIGUSR2"
  | SIGCHLD -> "SIGCHLD"
  | SIGCONT -> "SIGCONT"
  | SIGSTOP -> "SIGSTOP"

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)

type default_action = Terminate | Ignore_sig | Stop | Continue

let default_action = function
  | SIGCHLD -> Ignore_sig
  | SIGCONT -> Continue
  | SIGSTOP -> Stop
  | SIGHUP | SIGINT | SIGQUIT | SIGILL | SIGABRT | SIGFPE | SIGKILL
  | SIGSEGV | SIGPIPE | SIGALRM | SIGTERM | SIGUSR1 | SIGUSR2 ->
    Terminate

let catchable = function SIGKILL | SIGSTOP -> false | _ -> true

module Set = struct
  type signal = t
  type t = int

  let bit (s : signal) = 1 lsl number s
  let empty = 0

  let full =
    List.fold_left (fun acc s -> if catchable s then acc lor bit s else acc)
      0 all

  let add s t = t lor bit s
  let remove s t = t land lnot (bit s)
  let mem s t = t land bit s <> 0
  let union = ( lor )
  let inter = ( land )
  let diff a b = a land lnot b
  let of_list l = List.fold_left (fun acc s -> add s acc) empty l
  let to_list t = List.filter (fun s -> mem s t) all
  let is_empty t = t = 0
  let equal (a : t) b = a = b
end

type disposition = Default | Ignored | Handler of string
