(** Simulated POSIX signals: numbers, sets, dispositions and default
    actions. (Named [Usignal] to avoid clashing with the compiler's
    [Signal] conventions.) *)

type t =
  | SIGHUP
  | SIGINT
  | SIGQUIT
  | SIGILL
  | SIGABRT
  | SIGFPE
  | SIGKILL
  | SIGSEGV
  | SIGPIPE
  | SIGALRM
  | SIGTERM
  | SIGUSR1
  | SIGUSR2
  | SIGCHLD
  | SIGCONT
  | SIGSTOP

val all : t list
val number : t -> int
(** Conventional Linux numbering (SIGHUP = 1, ...). *)

val of_number : int -> t option
val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type default_action = Terminate | Ignore_sig | Stop | Continue

val default_action : t -> default_action

val catchable : t -> bool
(** SIGKILL and SIGSTOP cannot be caught, blocked or ignored. *)

(** Signal sets as bitmasks. *)
module Set : sig
  type signal := t
  type t

  val empty : t
  val full : t
  (** All catchable signals. *)

  val add : signal -> t -> t
  val remove : signal -> t -> t
  val mem : signal -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val of_list : signal list -> t
  val to_list : t -> signal list
  val is_empty : t -> bool
  val equal : t -> t -> bool
end

(** What a process does with a delivered signal. [Handler] carries a
    symbolic identifier: the simulator counts handler invocations rather
    than running user code asynchronously. *)
type disposition = Default | Ignored | Handler of string
