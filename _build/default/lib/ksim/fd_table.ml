type entry = { ofd : Ofd.t; mutable cloexec : bool }
type t = { slots : entry option array; limit : int }

let create ?(max_fds = 256) () =
  if max_fds <= 0 then invalid_arg "Fd_table.create: max_fds <= 0";
  { slots = Array.make max_fds None; limit = max_fds }

let max_fds t = t.limit

let count t =
  Array.fold_left (fun n slot -> if slot = None then n else n + 1) 0 t.slots

let alloc t ?(at_least = 0) ~cloexec ofd =
  if at_least < 0 || at_least >= t.limit then Error Errno.EINVAL
  else begin
    let rec find fd =
      if fd >= t.limit then Error Errno.EMFILE
      else if t.slots.(fd) = None then begin
        t.slots.(fd) <- Some { ofd; cloexec };
        Ok fd
      end
      else find (fd + 1)
    in
    find at_least
  end

let entry t fd =
  if fd < 0 || fd >= t.limit then Error Errno.EBADF
  else match t.slots.(fd) with None -> Error Errno.EBADF | Some e -> Ok e

let get t fd = Result.map (fun e -> e.ofd) (entry t fd)
let cloexec t fd = Result.map (fun e -> e.cloexec) (entry t fd)

let set_cloexec t fd v =
  Result.map (fun e -> e.cloexec <- v) (entry t fd)

let close t fd =
  match entry t fd with
  | Error _ as e -> e
  | Ok e ->
    Ofd.close e.ofd;
    t.slots.(fd) <- None;
    Ok ()

let dup t fd =
  match entry t fd with
  | Error e -> Error e
  | Ok e ->
    Ofd.incref e.ofd;
    (match alloc t ~cloexec:false e.ofd with
    | Ok _ as r -> r
    | Error _ as r ->
      Ofd.close e.ofd;
      r)

let dup2 t ~src ~dst =
  match entry t src with
  | Error e -> Error e
  | Ok e ->
    if dst < 0 || dst >= t.limit then Error Errno.EBADF
    else if src = dst then Ok dst
    else begin
      (match t.slots.(dst) with
      | Some old -> Ofd.close old.ofd
      | None -> ());
      Ofd.incref e.ofd;
      t.slots.(dst) <- Some { ofd = e.ofd; cloexec = false };
      Ok dst
    end

let clone t =
  let fresh = create ~max_fds:t.limit () in
  Array.iteri
    (fun fd slot ->
      match slot with
      | None -> ()
      | Some e ->
        Ofd.incref e.ofd;
        fresh.slots.(fd) <- Some { ofd = e.ofd; cloexec = e.cloexec })
    t.slots;
  fresh

let close_cloexec t =
  Array.iteri
    (fun fd slot ->
      match slot with
      | Some e when e.cloexec ->
        Ofd.close e.ofd;
        t.slots.(fd) <- None
      | Some _ | None -> ())
    t.slots

let close_all t =
  Array.iteri
    (fun fd slot ->
      match slot with
      | Some e ->
        Ofd.close e.ofd;
        t.slots.(fd) <- None
      | None -> ())
    t.slots

let iter t f =
  Array.iteri
    (fun fd slot ->
      match slot with
      | Some e -> f fd e.ofd ~cloexec:e.cloexec
      | None -> ())
    t.slots
