(** Per-process file-descriptor tables.

    Slots reference shared {!Ofd} descriptions; the close-on-exec flag is
    per-slot, per POSIX. {!clone} implements the fork/spawn inheritance
    rule (descriptions shared, flags copied). *)

type t

val create : ?max_fds:int -> unit -> t
(** Default limit 256 descriptors. *)

val max_fds : t -> int
val count : t -> int

val alloc : t -> ?at_least:int -> cloexec:bool -> Ofd.t -> (Types.fd, Errno.t) result
(** Install an already-referenced description in the lowest free slot
    ([>= at_least], default 0). Takes ownership of one reference. EMFILE
    when full. *)

val get : t -> Types.fd -> (Ofd.t, Errno.t) result
val cloexec : t -> Types.fd -> (bool, Errno.t) result
val set_cloexec : t -> Types.fd -> bool -> (unit, Errno.t) result
val close : t -> Types.fd -> (unit, Errno.t) result

val dup : t -> Types.fd -> (Types.fd, Errno.t) result
(** Lowest free fd; the new slot clears close-on-exec (POSIX). *)

val dup2 : t -> src:Types.fd -> dst:Types.fd -> (Types.fd, Errno.t) result
(** Silently closes [dst] first; [src = dst] is a no-op returning [dst]. *)

val clone : t -> t
(** fork-style duplicate: every slot shares the description (refcount
    bumped) and copies its cloexec flag. *)

val close_cloexec : t -> unit
(** exec: close every slot marked close-on-exec. *)

val close_all : t -> unit
(** Process teardown. *)

val iter : t -> (Types.fd -> Ofd.t -> cloexec:bool -> unit) -> unit
