type regular = {
  mutable content : Bytes.t;
  mutable len : int;
  mutable lock_owner : Types.pid option;
}

type node =
  | Reg of regular
  | Dir of (string, node) Hashtbl.t
  | Console of Buffer.t

type t = { root : (string, node) Hashtbl.t; console : Buffer.t }

let new_regular () = { content = Bytes.create 0; len = 0; lock_owner = None }

let create () =
  let root = Hashtbl.create 16 in
  let console = Buffer.create 256 in
  let dev = Hashtbl.create 4 in
  Hashtbl.add dev "console" (Console console);
  Hashtbl.add root "dev" (Dir dev);
  Hashtbl.add root "tmp" (Dir (Hashtbl.create 16));
  { root; console }

let console_buffer t = t.console

let normalize ~cwd path =
  let absolute =
    if String.length path > 0 && path.[0] = '/' then path else cwd ^ "/" ^ path
  in
  let parts = String.split_on_char '/' absolute in
  List.fold_left
    (fun acc part ->
      match part with
      | "" | "." -> acc
      | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
      | name -> name :: acc)
    [] parts
  |> List.rev

let resolve t ~cwd path =
  let rec go node = function
    | [] -> Ok node
    | name :: rest -> (
      match node with
      | Dir entries -> (
        match Hashtbl.find_opt entries name with
        | Some child -> go child rest
        | None -> Error Errno.ENOENT)
      | Reg _ | Console _ -> Error Errno.ENOTDIR)
  in
  go (Dir t.root) (normalize ~cwd path)

(* Resolve the parent directory of [path]; returns (entries, basename). *)
let resolve_parent t ~cwd path =
  match List.rev (normalize ~cwd path) with
  | [] -> Error Errno.EINVAL
  | base :: rev_parents -> (
    let parent_parts = List.rev rev_parents in
    let rec go node = function
      | [] -> (
        match node with
        | Dir entries -> Ok (entries, base)
        | Reg _ | Console _ -> Error Errno.ENOTDIR)
      | name :: rest -> (
        match node with
        | Dir entries -> (
          match Hashtbl.find_opt entries name with
          | Some child -> go child rest
          | None -> Error Errno.ENOENT)
        | Reg _ | Console _ -> Error Errno.ENOTDIR)
    in
    go (Dir t.root) parent_parts)

let mkdir t ~cwd path =
  match resolve_parent t ~cwd path with
  | Error _ as e -> e
  | Ok (entries, base) ->
    if Hashtbl.mem entries base then Error Errno.EEXIST
    else begin
      Hashtbl.add entries base (Dir (Hashtbl.create 8));
      Ok ()
    end

module Reg = struct
  let size r = r.len

  let ensure r capacity =
    if Bytes.length r.content < capacity then begin
      let fresh = Bytes.make (max capacity (2 * Bytes.length r.content)) '\000' in
      Bytes.blit r.content 0 fresh 0 r.len;
      r.content <- fresh
    end

  let read r ~off ~len =
    if off >= r.len then ""
    else Bytes.sub_string r.content off (min len (r.len - off))

  let write r ~off s =
    let n = String.length s in
    ensure r (off + n);
    (* sparse writes past EOF read back as zeroes thanks to make '\000' *)
    Bytes.blit_string s 0 r.content off n;
    r.len <- max r.len (off + n);
    n

  let truncate r = r.len <- 0
end

let create_file t ~cwd path ~trunc =
  match resolve t ~cwd path with
  | Ok (Reg r) ->
    if trunc then Reg.truncate r;
    Ok r
  | Ok (Dir _) -> Error Errno.EISDIR
  | Ok (Console _) -> Error Errno.EACCES
  | Error Errno.ENOENT -> (
    match resolve_parent t ~cwd path with
    | Error _ as e -> e
    | Ok (entries, base) ->
      if Hashtbl.mem entries base then Error Errno.EEXIST
        (* racing component types; unreachable single-threaded *)
      else begin
        let r = new_regular () in
        Hashtbl.add entries base (Reg r);
        Ok r
      end)
  | Error _ as e -> e

let read_file t ~cwd path =
  match resolve t ~cwd path with
  | Ok (Reg r) -> Ok (Reg.read r ~off:0 ~len:r.len)
  | Ok (Dir _) -> Error Errno.EISDIR
  | Ok (Console _) -> Error Errno.EACCES
  | Error _ as e -> e

let file_exists t ~cwd path =
  match resolve t ~cwd path with Ok _ -> true | Error _ -> false
