(** Minimal in-memory filesystem for the simulator.

    Enough POSIX surface for the experiments: regular files with byte
    contents, directories, a console device whose output tests can
    inspect (the E4 double-flush experiment counts bytes written there),
    and one advisory whole-file lock per regular file (fcntl-style: owned
    by a process, {e not} inherited across fork — one of the paper's
    fork special cases). *)

type regular = {
  mutable content : Bytes.t;
  mutable len : int;
  mutable lock_owner : Types.pid option;
}

type node =
  | Reg of regular
  | Dir of (string, node) Hashtbl.t
  | Console of Buffer.t

type t

val create : unit -> t
(** Root with an empty [/tmp] and the [/dev/console] device. *)

val console_buffer : t -> Buffer.t
(** Everything ever written to the console. *)

val normalize : cwd:string -> string -> string list
(** Resolve [.], [..] and redundant slashes of a (possibly relative)
    path against [cwd]; result is the component list from the root. *)

val resolve : t -> cwd:string -> string -> (node, Errno.t) result
(** ENOENT on a missing component, ENOTDIR when traversing a
    non-directory. *)

val mkdir : t -> cwd:string -> string -> (unit, Errno.t) result
(** EEXIST if present; ENOENT if the parent is missing. *)

val create_file :
  t -> cwd:string -> string -> trunc:bool -> (regular, Errno.t) result
(** Open-with-O_CREAT path: returns the existing regular file (truncated
    when [trunc]), or creates it. EISDIR on directories. *)

val read_file : t -> cwd:string -> string -> (string, Errno.t) result
(** Whole contents, for tests and examples. *)

val file_exists : t -> cwd:string -> string -> bool

(** Regular-file byte operations used by open file descriptions. *)
module Reg : sig
  val read : regular -> off:int -> len:int -> string
  val write : regular -> off:int -> string -> int
  (** Returns bytes written (always all of them; the file grows). *)

  val size : regular -> int
  val truncate : regular -> unit
end
