type t = {
  name : string;
  text_bytes : int;
  data_bytes : int;
  main : argv:string list -> unit -> unit;
}

let make ?(text_kib = 64) ?(data_kib = 16) ~name main =
  if name = "" then invalid_arg "Program.make: empty name";
  if text_kib < 0 || data_kib < 0 then invalid_arg "Program.make: negative size";
  { name; text_bytes = text_kib * 1024; data_bytes = data_kib * 1024; main }

let pages bytes = (bytes + Vmem.Addr.page_size - 1) / Vmem.Addr.page_size
let text_pages t = pages t.text_bytes
let data_pages t = pages t.data_bytes
let image_pages t = text_pages t + data_pages t
