(** Bounded ring of kernel events, for tests, debugging and the
    {!Lint} trace checker. *)

type event = {
  seq : int;  (** monotonically increasing across drops *)
  tick : int;
  pid : Types.pid;
  tid : Types.tid;
  what : string;
  args : (string * string) list;
      (** structured detail the kernel attaches to fork/exec/open/exit
          events (live thread counts, child pids, inherited fds, …) *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are dropped. *)

val record :
  ?args:(string * string) list ->
  t ->
  tick:int ->
  pid:Types.pid ->
  tid:Types.tid ->
  string ->
  unit

val events : t -> event list
(** Oldest first. *)

val total : t -> int
(** Events ever recorded, including dropped ones. *)

val clear : t -> unit

val find : t -> pattern:string -> event list
(** Events whose [what] contains [pattern] as a substring. *)

val arg : event -> string -> string option
val int_arg : event -> string -> int option
