(** Bounded ring of kernel events, for tests and debugging. *)

type event = {
  seq : int;  (** monotonically increasing across drops *)
  tick : int;
  pid : Types.pid;
  tid : Types.tid;
  what : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are dropped. *)

val record : t -> tick:int -> pid:Types.pid -> tid:Types.tid -> string -> unit
val events : t -> event list
(** Oldest first. *)

val total : t -> int
(** Events ever recorded, including dropped ones. *)

val clear : t -> unit
val find : t -> pattern:string -> event list
(** Events whose [what] contains [pattern] as a substring. *)
