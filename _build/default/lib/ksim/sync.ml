type state = Unlocked | Locked_by of Types.tid
type t = { id : int; mutable state : state }
type table = { mutable next_id : int; mutexes : (int, t) Hashtbl.t }

let create_table () = { next_id = 0; mutexes = Hashtbl.create 8 }

let create table =
  let m = { id = table.next_id; state = Unlocked } in
  table.next_id <- table.next_id + 1;
  Hashtbl.add table.mutexes m.id m;
  m

let find table id = Hashtbl.find_opt table.mutexes id

let clone_table table =
  let fresh = { next_id = table.next_id; mutexes = Hashtbl.create 8 } in
  Hashtbl.iter
    (fun id m -> Hashtbl.add fresh.mutexes id { id; state = m.state })
    table.mutexes;
  fresh

let fresh_table_ids table = table.next_id

let held_by_missing_thread table ~live_tids =
  Hashtbl.fold
    (fun _ m acc ->
      match m.state with
      | Locked_by tid when not (List.mem tid live_tids) -> m :: acc
      | Locked_by _ | Unlocked -> acc)
    table.mutexes []
