(* Layout: an 8-byte little-endian length word at [base], an 8-byte
   owner-pid word at [base + 8] (the process that buffered the current
   contents), then [bufsize] data bytes at [base + 16]. State lives
   entirely in simulated memory so fork clones it — including the owner
   pid, which is how a flush can tell it is writing out another
   process's bytes. *)

type t = { fd : Types.fd; base : int; bufsize : int }

let word_len = 8
let header_len = 2 * word_len

let encode_word n =
  String.init word_len (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let decode_word s =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((acc lsl 8) lor Char.code s.[i])
  in
  go (word_len - 1) 0

let fopen ?(bufsize = 4096) fd =
  if bufsize <= 0 then Error Errno.EINVAL
  else
    match Api.mmap ~len:(header_len + bufsize) ~perm:Vmem.Perm.rw with
    | Error e -> Error e
    | Ok base -> (
      match
        Api.mem_write ~addr:base
          (encode_word 0 ^ encode_word (Api.getpid ()))
      with
      | Error e -> Error e
      | Ok () -> Ok { fd; base; bufsize })

let fd t = t.fd
let bufsize t = t.bufsize

let buffered t =
  Result.map decode_word (Api.mem_read ~addr:t.base ~len:word_len)

let set_buffered t n = Api.mem_write ~addr:t.base (encode_word n)

let owner t =
  Result.map decode_word
    (Api.mem_read ~addr:(t.base + word_len) ~len:word_len)

let set_owner t pid = Api.mem_write ~addr:(t.base + word_len) (encode_word pid)

let flush t =
  match buffered t with
  | Error e -> Error e
  | Ok 0 -> Ok ()
  | Ok n -> (
    match Api.mem_read ~addr:(t.base + header_len) ~len:n with
    | Error e -> Error e
    | Ok data -> (
      match Api.write_all t.fd data with
      | Error _ as e -> e
      | Ok () ->
        let inherited =
          match owner t with
          | Ok who when who <> Api.getpid () -> n
          | Ok _ | Error _ -> 0
        in
        Effect.perform
          (Sysreq.Sys (Sysreq.Stdio_flushed { bytes = n; inherited }));
        set_buffered t 0))

let rec puts t s =
  if s = "" then Ok ()
  else
    match buffered t with
    | Error e -> Error e
    | Ok used ->
      let space = t.bufsize - used in
      let n = min space (String.length s) in
      if n = 0 then
        match flush t with Error e -> Error e | Ok () -> puts t s
      else begin
        (* first bytes into an empty buffer claim it for this process *)
        match
          if used = 0 then set_owner t (Api.getpid ()) else Ok ()
        with
        | Error e -> Error e
        | Ok () -> (
          match
            Api.mem_write ~addr:(t.base + header_len + used) (String.sub s 0 n)
          with
          | Error e -> Error e
          | Ok () -> (
            match set_buffered t (used + n) with
            | Error e -> Error e
            | Ok () ->
              let rest = String.sub s n (String.length s - n) in
              if rest = "" then Ok () else puts t rest))
      end
