(* Layout: an 8-byte little-endian length word at [base], then [bufsize]
   data bytes at [base + 8]. State lives entirely in simulated memory so
   fork clones it. *)

type t = { fd : Types.fd; base : int; bufsize : int }

let word_len = 8

let encode_len n =
  String.init word_len (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let decode_len s =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((acc lsl 8) lor Char.code s.[i])
  in
  go (word_len - 1) 0

let fopen ?(bufsize = 4096) fd =
  if bufsize <= 0 then Error Errno.EINVAL
  else
    match Api.mmap ~len:(word_len + bufsize) ~perm:Vmem.Perm.rw with
    | Error e -> Error e
    | Ok base -> (
      match Api.mem_write ~addr:base (encode_len 0) with
      | Error e -> Error e
      | Ok () -> Ok { fd; base; bufsize })

let fd t = t.fd
let bufsize t = t.bufsize

let buffered t =
  Result.map decode_len (Api.mem_read ~addr:t.base ~len:word_len)

let set_buffered t n = Api.mem_write ~addr:t.base (encode_len n)

let flush t =
  match buffered t with
  | Error e -> Error e
  | Ok 0 -> Ok ()
  | Ok n -> (
    match Api.mem_read ~addr:(t.base + word_len) ~len:n with
    | Error e -> Error e
    | Ok data -> (
      match Api.write_all t.fd data with
      | Error _ as e -> e
      | Ok () -> set_buffered t 0))

let rec puts t s =
  if s = "" then Ok ()
  else
    match buffered t with
    | Error e -> Error e
    | Ok used ->
      let space = t.bufsize - used in
      let n = min space (String.length s) in
      if n = 0 then
        match flush t with Error e -> Error e | Ok () -> puts t s
      else begin
        match Api.mem_write ~addr:(t.base + word_len + used) (String.sub s 0 n) with
        | Error e -> Error e
        | Ok () -> (
          match set_buffered t (used + n) with
          | Error e -> Error e
          | Ok () ->
            let rest = String.sub s n (String.length s - n) in
            if rest = "" then Ok () else puts t rest)
      end
