(** Simulated program images.

    A program is an OCaml closure standing in for machine code, plus the
    image geometry (text/data sizes) the exec loader uses to build the
    address space and charge load costs. Programs are registered under a
    path; [exec]/[posix_spawn] look the path up in the kernel registry
    (ENOENT if absent — there is no on-disk format). *)

type t = {
  name : string;  (** registry path, e.g. "/bin/true" *)
  text_bytes : int;  (** size of the r-x image segment *)
  data_bytes : int;  (** size of the rw- image segment *)
  main : argv:string list -> unit -> unit;
      (** body factory; the closure runs as the process's initial thread
          and may perform {!Sysreq} effects *)
}

val make :
  ?text_kib:int -> ?data_kib:int -> name:string ->
  (argv:string list -> unit -> unit) -> t
(** Defaults: 64 KiB text, 16 KiB data.
    @raise Invalid_argument on negative sizes or an empty name. *)

val text_pages : t -> int
val data_pages : t -> int
val image_pages : t -> int
