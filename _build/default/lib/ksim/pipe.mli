(** Anonymous pipe state (the byte channel only; blocking policy lives in
    the kernel, which inspects this state to decide when a thread may
    proceed). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 bytes. @raise Invalid_argument if
    [capacity <= 0]. *)

val capacity : t -> int
val available : t -> int
(** Bytes buffered and ready to read. *)

val space : t -> int
(** Bytes that can be written without exceeding capacity. *)

val readers : t -> int
val writers : t -> int
val add_reader : t -> unit
val add_writer : t -> unit
val drop_reader : t -> unit
val drop_writer : t -> unit

val write : t -> string -> int
(** Append at most [space t] bytes; returns how many were taken. *)

val read : t -> int -> string
(** Take up to [n] buffered bytes (possibly [""]). *)

val eof : t -> bool
(** No data buffered and no writer remains. *)

val broken : t -> bool
(** No reader remains (writes must fail with EPIPE/SIGPIPE). *)
