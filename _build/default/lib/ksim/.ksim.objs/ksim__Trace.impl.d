lib/ksim/trace.ml: Array List String Types
