lib/ksim/trace.ml: Array Buffer Errno List Metrics String Types
