lib/ksim/api.ml: Buffer Effect List Result String Sysreq Types
