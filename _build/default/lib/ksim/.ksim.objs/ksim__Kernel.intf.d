lib/ksim/kernel.mli: Errno Format Kstat Proc Program Trace Types Vfs Vmem
