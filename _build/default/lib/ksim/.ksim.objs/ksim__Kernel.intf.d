lib/ksim/kernel.mli: Errno Format Proc Program Trace Types Vfs Vmem
