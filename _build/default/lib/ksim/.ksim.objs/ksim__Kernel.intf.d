lib/ksim/kernel.mli: Errno Fault Format Kstat Proc Program Trace Types Vfs Vmem
