lib/ksim/usignal.mli: Format
