lib/ksim/lint.ml: Forklore Hashtbl List Printf Trace Types
