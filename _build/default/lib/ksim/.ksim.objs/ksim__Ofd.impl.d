lib/ksim/ofd.ml: Buffer Errno Pipe String Types Vfs
