lib/ksim/pipe.mli:
