lib/ksim/kstat.mli: Hashtbl Metrics Types
