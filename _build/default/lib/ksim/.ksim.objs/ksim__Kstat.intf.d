lib/ksim/kstat.mli: Fault Hashtbl Metrics Types
