lib/ksim/types.mli: Format Usignal
