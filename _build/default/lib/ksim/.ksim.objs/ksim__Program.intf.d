lib/ksim/program.mli:
