lib/ksim/kernel.ml: Array Buffer Bytes Char Effect Errno Fault Fd_table Format Hashtbl Kstat List Ofd Option Pipe Printf Prng Proc Program Queue Result String Sync Sysreq Trace Types Usignal Vfs Vmem
