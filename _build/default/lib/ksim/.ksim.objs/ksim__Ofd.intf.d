lib/ksim/ofd.mli: Buffer Errno Pipe Types Vfs
