lib/ksim/stdio.ml: Api Char Effect Errno Result String Sysreq Types Vmem
