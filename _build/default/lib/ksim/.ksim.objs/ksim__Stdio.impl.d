lib/ksim/stdio.ml: Api Char Errno Result String Types Vmem
