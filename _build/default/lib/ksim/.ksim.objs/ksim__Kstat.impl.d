lib/ksim/kstat.ml: Hashtbl List Metrics Types
