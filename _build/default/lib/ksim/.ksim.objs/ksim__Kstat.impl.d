lib/ksim/kstat.ml: Fault Hashtbl List Metrics Types
