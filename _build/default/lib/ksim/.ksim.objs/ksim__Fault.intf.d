lib/ksim/fault.mli: Errno
