lib/ksim/fd_table.ml: Array Errno Ofd Result
