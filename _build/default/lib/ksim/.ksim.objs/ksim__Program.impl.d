lib/ksim/program.ml: Vmem
