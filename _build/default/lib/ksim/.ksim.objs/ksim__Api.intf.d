lib/ksim/api.mli: Errno Types Usignal Vmem
