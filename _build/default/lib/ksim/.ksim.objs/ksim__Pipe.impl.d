lib/ksim/pipe.ml: Buffer String
