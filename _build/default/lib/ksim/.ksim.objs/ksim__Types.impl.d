lib/ksim/types.ml: Format Usignal
