lib/ksim/proc.mli: Effect Fd_table Format Hashtbl Sync Sysreq Types Usignal Vfs Vmem
