lib/ksim/vfs.ml: Buffer Bytes Errno Hashtbl List String Types
