lib/ksim/lint.mli: Forklore Trace
