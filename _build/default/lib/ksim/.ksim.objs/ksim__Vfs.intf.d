lib/ksim/vfs.mli: Buffer Bytes Errno Hashtbl Types
