lib/ksim/errno.mli: Format
