lib/ksim/usignal.ml: Format List
