lib/ksim/fd_table.mli: Errno Ofd Types
