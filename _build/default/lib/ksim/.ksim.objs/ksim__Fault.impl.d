lib/ksim/fault.ml: Errno Hashtbl List Printf Prng
