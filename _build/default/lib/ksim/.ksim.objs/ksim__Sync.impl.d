lib/ksim/sync.ml: Hashtbl List Types
