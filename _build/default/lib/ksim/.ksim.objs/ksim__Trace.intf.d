lib/ksim/trace.mli: Errno Metrics Types
