lib/ksim/trace.mli: Types
