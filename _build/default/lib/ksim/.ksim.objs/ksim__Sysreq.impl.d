lib/ksim/sysreq.ml: Effect Errno List Types Usignal Vmem
