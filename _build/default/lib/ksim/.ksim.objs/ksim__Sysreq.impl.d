lib/ksim/sysreq.ml: Effect Errno Types Usignal Vmem
