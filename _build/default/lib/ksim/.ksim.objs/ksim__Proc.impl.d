lib/ksim/proc.ml: Array Effect Fd_table Format Hashtbl List Option Sync Sysreq Types Usignal Vfs Vmem
