lib/ksim/errno.ml: Format List
