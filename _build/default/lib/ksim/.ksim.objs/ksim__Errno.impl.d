lib/ksim/errno.ml: Format
