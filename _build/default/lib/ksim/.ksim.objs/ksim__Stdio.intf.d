lib/ksim/stdio.mli: Errno Types
