lib/ksim/sync.mli: Types
