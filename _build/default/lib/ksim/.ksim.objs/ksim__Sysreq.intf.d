lib/ksim/sysreq.mli: Effect Errno Types Usignal Vmem
