(** Userland buffered I/O whose buffer lives in {e simulated} memory.

    This is the piece that makes the paper's "fork doesn't compose with
    buffered I/O" claim measurable: because the buffer is ordinary
    process memory, fork's COW copy duplicates any unflushed bytes, and
    when parent and child both flush (or exit), the output appears twice.
    A spawn-based child has a fresh image and cannot replay the parent's
    buffer.

    All functions must run inside a simulated program. *)

type t

val fopen : ?bufsize:int -> Types.fd -> (t, Errno.t) result
(** Wrap a descriptor with a write buffer of [bufsize] bytes (default
    4096, one page), allocated with mmap in the calling process. *)

val fd : t -> Types.fd
val bufsize : t -> int

val puts : t -> string -> (unit, Errno.t) result
(** Append to the buffer, flushing whenever it fills. *)

val buffered : t -> (int, Errno.t) result
(** Bytes currently sitting unflushed in simulated memory. *)

val owner : t -> (Types.pid, Errno.t) result
(** The process that buffered the current contents (claimed by the
    first {!puts} into an empty buffer). A fork clones this word along
    with the buffer, so a child flushing inherited bytes is
    detectable. *)

val flush : t -> (unit, Errno.t) result
(** Write out and clear the buffer. Also reports the flush to the
    kernel's {!Kstat} meter: bytes buffered by a different process (the
    fork-duplicated case) are counted as double-flushed. *)
