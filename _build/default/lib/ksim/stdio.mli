(** Userland buffered I/O whose buffer lives in {e simulated} memory.

    This is the piece that makes the paper's "fork doesn't compose with
    buffered I/O" claim measurable: because the buffer is ordinary
    process memory, fork's COW copy duplicates any unflushed bytes, and
    when parent and child both flush (or exit), the output appears twice.
    A spawn-based child has a fresh image and cannot replay the parent's
    buffer.

    All functions must run inside a simulated program. *)

type t

val fopen : ?bufsize:int -> Types.fd -> (t, Errno.t) result
(** Wrap a descriptor with a write buffer of [bufsize] bytes (default
    4096, one page), allocated with mmap in the calling process. *)

val fd : t -> Types.fd
val bufsize : t -> int

val puts : t -> string -> (unit, Errno.t) result
(** Append to the buffer, flushing whenever it fills. *)

val buffered : t -> (int, Errno.t) result
(** Bytes currently sitting unflushed in simulated memory. *)

val flush : t -> (unit, Errno.t) result
(** Write out and clear the buffer. *)
