type event = {
  seq : int;
  tick : int;
  pid : Types.pid;
  tid : Types.tid;
  what : string;
  args : (string * string) list;
}

type t = {
  capacity : int;
  ring : event option array;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { capacity; ring = Array.make capacity None; total = 0 }

let record ?(args = []) t ~tick ~pid ~tid what =
  let e = { seq = t.total; tick; pid; tid; what; args } in
  t.ring.(t.total mod t.capacity) <- Some e;
  t.total <- t.total + 1

let events t =
  let out = ref [] in
  let start = max 0 (t.total - t.capacity) in
  for seq = t.total - 1 downto start do
    match t.ring.(seq mod t.capacity) with
    | Some e when e.seq = seq -> out := e :: !out
    | Some _ | None -> ()
  done;
  !out

let total t = t.total
let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.total <- 0

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  end

let find t ~pattern =
  List.filter (fun e -> contains_substring e.what pattern) (events t)

let arg e key = List.assoc_opt key e.args

let int_arg e key =
  match arg e key with Some v -> int_of_string_opt v | None -> None
