(** Process-local mutexes whose state lives, conceptually, in process
    memory.

    This is the heart of the paper's thread-safety argument: a mutex is
    just a word in the address space, so fork copies it {e as data}. If a
    thread other than the forker holds a lock at fork time, the child's
    copy is "held" by a thread that does not exist in the child — and the
    first lock attempt there blocks forever. {!clone_table} implements
    exactly that memcpy semantics. Blocking itself is the kernel's job;
    this module only stores the state. *)

type state = Unlocked | Locked_by of Types.tid

type t = { id : int; mutable state : state }

type table

val create_table : unit -> table

val create : table -> t
(** Allocate a fresh unlocked mutex with a table-unique id. *)

val find : table -> int -> t option

val clone_table : table -> table
(** fork: duplicate every mutex record {e including its owner field} —
    the child inherits locks held by threads it doesn't have. *)

val fresh_table_ids : table -> int
(** Next id to be allocated (for tests). *)

val held_by_missing_thread : table -> live_tids:Types.tid list -> t list
(** Mutexes whose owner is not among [live_tids] — the orphaned locks
    that make a post-fork child deadlock-prone. *)
