type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014) *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound <= 0";
  next t mod bound

let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11)
              *. (1.0 /. 9007199254740992.0) (* 2^-53 *)

let bool t = Int64.logand (next64 t) 1L = 1L
let split t = { state = next64 t }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
