(** Deterministic splitmix64 PRNG.

    Every randomized piece of the simulator and workload generators draws
    from an explicitly-seeded {!t}, so experiments are reproducible
    bit-for-bit; [Stdlib.Random] is never used in this repository. *)

type t

val create : seed:int -> t

val next : t -> int
(** Next raw draw, uniform over non-negative OCaml ints (62 bits). *)

val int : t -> bound:int -> int
(** Uniform in [[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** An independent generator derived from this one's stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
