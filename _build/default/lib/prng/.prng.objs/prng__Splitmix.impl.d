lib/prng/splitmix.ml: Array Int64
