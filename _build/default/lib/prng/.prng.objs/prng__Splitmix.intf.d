lib/prng/splitmix.mli:
