module Imap = Map.Make (Int)

(* Keyed by interval start; the payload stores the exclusive stop. *)
type 'a t = (int * 'a) Imap.t

let empty = Imap.empty
let is_empty = Imap.is_empty
let cardinal = Imap.cardinal

let check_range start stop name =
  if start < 0 then invalid_arg (name ^ ": negative start");
  if start >= stop then invalid_arg (name ^ ": empty range")

(* The interval at or before [point], if it covers it. *)
let find_containing point m =
  match Imap.find_last_opt (fun s -> s <= point) m with
  | Some (s, (e, v)) when point < e -> Some (s, e, v)
  | Some _ | None -> None

let mem point m = Option.is_some (find_containing point m)

let overlapping ~start ~stop m =
  check_range start stop "Region_map.overlapping";
  (* the interval containing [start] plus all intervals whose start lies
     in [start, stop): walk the map from the containing interval (or the
     first at/after [start]) instead of folding the whole map *)
  let from =
    match find_containing start m with Some (s, _, _) -> s | None -> start
  in
  let rec collect seq acc =
    match seq () with
    | Seq.Cons ((s, (e, v)), rest) when s < stop ->
      collect rest ((s, e, v) :: acc)
    | Seq.Cons _ | Seq.Nil -> List.rev acc
  in
  collect (Imap.to_seq_from from m) []

let add ~start ~stop v m =
  check_range start stop "Region_map.add";
  let overlaps =
    mem start m
    ||
    match Imap.find_first_opt (fun s -> s >= start) m with
    | Some (s, _) -> s < stop
    | None -> false
  in
  if overlaps then Error `Overlap else Ok (Imap.add start (stop, v) m)

let carve ~start ~stop ~crop m =
  check_range start stop "Region_map.carve";
  let victims = overlapping ~start ~stop m in
  let m, removed =
    List.fold_left
      (fun (m, removed) (s, e, v) ->
        let m = Imap.remove s m in
        (* left fragment survives *)
        let m =
          if s < start then
            Imap.add s (start, crop ~old_start:s ~start:s ~stop:start v) m
          else m
        in
        (* right fragment survives *)
        let m =
          if e > stop then
            Imap.add stop (e, crop ~old_start:s ~start:stop ~stop:e v) m
          else m
        in
        let mid_s = max s start and mid_e = min e stop in
        let frag = (mid_s, mid_e, crop ~old_start:s ~start:mid_s ~stop:mid_e v) in
        (m, frag :: removed))
      (m, []) victims
  in
  (m, List.rev removed)

let iter f m = Imap.iter (fun s (e, v) -> f s e v) m
let fold f m init = Imap.fold (fun s (e, v) acc -> f s e v acc) m init
let to_list m = fold (fun s e v acc -> (s, e, v) :: acc) m [] |> List.rev

exception Found_gap of int

let find_gap ~min ~max ~len m =
  if len <= 0 then invalid_arg "Region_map.find_gap: len <= 0";
  (* allocation-free ascending scan; intervals below [min] neither open a
     gap (their start is below [pos]) nor move [pos] *)
  let pos = ref min in
  try
    Imap.iter
      (fun s (e, _) ->
        if !pos + len <= s then raise (Found_gap !pos)
        else if e > !pos then pos := e)
      m;
    if !pos + len <= max then Some !pos else None
  with Found_gap p -> Some p

let total_length m = fold (fun s e _ acc -> acc + (e - s)) m 0
