type policy = Strict | Overcommit

type frame = int

type t = {
  nframes : int;
  refcounts : int array;
  mutable next_fresh : int;  (** frames >= this have never been handed out *)
  mutable free_stack : int list;  (** freed frames available for reuse *)
  mutable used : int;
  mutable committed : int;
  mutable policy : policy;
  data : (int, Bytes.t) Hashtbl.t;  (** materialised contents *)
}

let create ?(policy = Strict) ~frames () =
  if frames <= 0 then invalid_arg "Frame.create: frames <= 0";
  {
    nframes = frames;
    refcounts = Array.make frames 0;
    next_fresh = 0;
    free_stack = [];
    used = 0;
    committed = 0;
    policy;
    data = Hashtbl.create 64;
  }

let policy t = t.policy
let set_policy t p = t.policy <- p
let total t = t.nframes
let used t = t.used
let free t = t.nframes - t.used

let check_frame t f name =
  if f < 0 || f >= t.nframes || t.refcounts.(f) = 0 then
    invalid_arg (name ^ ": unallocated frame")

let alloc t =
  match t.free_stack with
  | f :: rest ->
    t.free_stack <- rest;
    t.refcounts.(f) <- 1;
    t.used <- t.used + 1;
    Ok f
  | [] ->
    if t.next_fresh >= t.nframes then Error `Out_of_memory
    else begin
      let f = t.next_fresh in
      t.next_fresh <- t.next_fresh + 1;
      t.refcounts.(f) <- 1;
      t.used <- t.used + 1;
      Ok f
    end

let incref t f =
  check_frame t f "Frame.incref";
  t.refcounts.(f) <- t.refcounts.(f) + 1

let decref t f =
  check_frame t f "Frame.decref";
  t.refcounts.(f) <- t.refcounts.(f) - 1;
  if t.refcounts.(f) = 0 then begin
    Hashtbl.remove t.data f;
    t.free_stack <- f :: t.free_stack;
    t.used <- t.used - 1;
    true
  end
  else false

let refcount t f =
  if f < 0 || f >= t.nframes then 0 else t.refcounts.(f)

let commit t pages =
  if pages < 0 then invalid_arg "Frame.commit: negative";
  match t.policy with
  | Overcommit ->
    t.committed <- t.committed + pages;
    Ok ()
  | Strict ->
    if t.committed + pages > t.nframes then Error `Commit_limit
    else begin
      t.committed <- t.committed + pages;
      Ok ()
    end

let uncommit t pages =
  if pages < 0 then invalid_arg "Frame.uncommit: negative";
  t.committed <- max 0 (t.committed - pages)

let committed t = t.committed

let contents t f =
  match Hashtbl.find_opt t.data f with
  | Some b -> b
  | None ->
    let b = Bytes.make Addr.page_size '\000' in
    Hashtbl.add t.data f b;
    b

let write_byte t f ~off v =
  check_frame t f "Frame.write_byte";
  if off < 0 || off >= Addr.page_size then
    invalid_arg "Frame.write_byte: offset";
  if v < 0 || v > 255 then invalid_arg "Frame.write_byte: byte value";
  Bytes.set (contents t f) off (Char.chr v)

let read_byte t f ~off =
  check_frame t f "Frame.read_byte";
  if off < 0 || off >= Addr.page_size then invalid_arg "Frame.read_byte: offset";
  match Hashtbl.find_opt t.data f with
  | None -> 0
  | Some b -> Char.code (Bytes.get b off)

let blit_string t f ~off s =
  check_frame t f "Frame.blit_string";
  if off < 0 || off + String.length s > Addr.page_size then
    invalid_arg "Frame.blit_string: range";
  Bytes.blit_string s 0 (contents t f) off (String.length s)

let read_string t f ~off ~len =
  check_frame t f "Frame.read_string";
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg "Frame.read_string: range";
  match Hashtbl.find_opt t.data f with
  | None -> String.make len '\000'
  | Some b -> Bytes.sub_string b off len

let copy_contents t ~src ~dst =
  check_frame t src "Frame.copy_contents";
  check_frame t dst "Frame.copy_contents";
  match Hashtbl.find_opt t.data src with
  | None -> ()
  | Some b -> Hashtbl.replace t.data dst (Bytes.copy b)
