(** Virtual memory area payloads (the per-region record of an address
    space). Placement (start/stop) lives in the {!Region_map} keys; this
    module is only the payload and its cropping rule. *)

type kind =
  | Anon  (** private anonymous memory (mmap) *)
  | Heap  (** the brk-managed heap *)
  | Stack
  | Text of { path : string }  (** executable image text *)
  | Data of { path : string }  (** executable image data *)
  | File of { path : string; offset : int }  (** file-backed mapping *)
  | Guard  (** no-access guard region *)

type t = { perm : Perm.t; kind : kind; shared : bool }

val make : ?shared:bool -> perm:Perm.t -> kind:kind -> unit -> t
(** [shared] defaults to false (private mapping). *)

val crop : old_start:int -> start:int -> stop:int -> t -> t
(** Adjust the payload for a sub-range [[start, stop)] of a region that
    used to start at [old_start]; file-backed mappings shift their
    offset, other kinds are unchanged. Matches the signature
    {!Region_map.carve} expects. *)

val is_file_backed : t -> bool
val kind_name : t -> string
val pp : Format.formatter -> t -> unit
