lib/vmem/vma.mli: Format Perm
