lib/vmem/page_table.mli: Cost Frame Perm Pte
