lib/vmem/pte.ml: Array Format Perm
