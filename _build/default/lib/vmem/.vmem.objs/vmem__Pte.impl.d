lib/vmem/pte.ml: Format Perm
