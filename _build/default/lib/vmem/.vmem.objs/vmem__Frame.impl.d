lib/vmem/frame.ml: Addr Array Bytes Char Hashtbl String
