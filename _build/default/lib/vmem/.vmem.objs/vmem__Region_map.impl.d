lib/vmem/region_map.ml: Int List Map Option Seq
