lib/vmem/addr_space.mli: Cost Format Frame Perm Pte Tlb Vma
