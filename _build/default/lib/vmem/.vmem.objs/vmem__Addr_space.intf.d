lib/vmem/addr_space.mli: Cost Format Frame Perm Tlb Vma
