lib/vmem/addr.mli: Format
