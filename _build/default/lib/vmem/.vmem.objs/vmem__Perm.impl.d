lib/vmem/perm.ml: Bytes Format
