lib/vmem/pte.mli: Format Frame Perm
