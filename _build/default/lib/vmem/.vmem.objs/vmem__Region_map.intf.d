lib/vmem/region_map.mli:
