lib/vmem/addr.ml: Format
