lib/vmem/perm.mli: Format
