lib/vmem/tlb.mli: Cost
