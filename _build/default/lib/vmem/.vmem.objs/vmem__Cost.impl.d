lib/vmem/cost.ml: Float Format Hashtbl List Metrics
