lib/vmem/cost.mli: Format
