lib/vmem/page_table.ml: Addr Array Cost Frame Perm Pte
