lib/vmem/addr_space.ml: Addr Array Cost Format Frame List Page_table Perm Pte Region_map Tlb Vma
