lib/vmem/addr_space.ml: Addr Cost Format Frame List Page_table Perm Pte Region_map Tlb Vma
