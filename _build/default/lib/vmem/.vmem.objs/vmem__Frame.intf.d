lib/vmem/frame.mli:
