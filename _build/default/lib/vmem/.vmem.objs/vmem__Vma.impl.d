lib/vmem/vma.ml: Format Perm
