lib/vmem/tlb.ml: Cost
