type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let r = { read = true; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let allows granted requested =
  ((not requested.read) || granted.read)
  && ((not requested.write) || granted.write)
  && ((not requested.exec) || granted.exec)

let union a b =
  { read = a.read || b.read;
    write = a.write || b.write;
    exec = a.exec || b.exec }

let inter a b =
  { read = a.read && b.read;
    write = a.write && b.write;
    exec = a.exec && b.exec }

let equal a b = a = b

let to_string t =
  let c flag ch = if flag then ch else '-' in
  let b = Bytes.create 3 in
  Bytes.set b 0 (c t.read 'r');
  Bytes.set b 1 (c t.write 'w');
  Bytes.set b 2 (c t.exec 'x');
  Bytes.to_string b

let pp ppf t = Format.pp_print_string ppf (to_string t)
