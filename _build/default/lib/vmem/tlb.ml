type stats = {
  local_flushes : int;
  shootdowns : int;
  invalidations : int;
}

type t = {
  cost : Cost.t;
  ncpus : int;
  mutable local_flushes : int;
  mutable shootdowns : int;
  mutable invalidations : int;
}

let create ?(cpus = 4) cost =
  if cpus < 1 then invalid_arg "Tlb.create: cpus < 1";
  { cost; ncpus = cpus; local_flushes = 0; shootdowns = 0; invalidations = 0 }

let cpus t = t.ncpus

let flush_local t =
  t.local_flushes <- t.local_flushes + 1;
  Cost.charge t.cost "tlb:flush" (Cost.params t.cost).Cost.tlb_flush

let shootdown t =
  t.shootdowns <- t.shootdowns + 1;
  t.local_flushes <- t.local_flushes + 1;
  let p = Cost.params t.cost in
  Cost.charge t.cost "tlb:flush" p.Cost.tlb_flush;
  Cost.charge t.cost "tlb:shootdown"
    (p.Cost.tlb_shootdown *. float_of_int (t.ncpus - 1))

let invalidate_page t =
  t.invalidations <- t.invalidations + 1;
  Cost.charge t.cost "tlb:invlpg" (Cost.params t.cost).Cost.tlb_invlpg

let stats t =
  {
    local_flushes = t.local_flushes;
    shootdowns = t.shootdowns;
    invalidations = t.invalidations;
  }
