type stats = {
  local_flushes : int;
  shootdowns : int;
  invalidations : int;
}

type t = { cost : Cost.t; ncpus : int }

let create ?(cpus = 4) cost =
  if cpus < 1 then invalid_arg "Tlb.create: cpus < 1";
  { cost; ncpus = cpus }

let cpus t = t.ncpus

let flush_local t =
  Cost.charge t.cost "tlb:flush" (Cost.params t.cost).Cost.tlb_flush

let shootdown t =
  let p = Cost.params t.cost in
  Cost.charge t.cost "tlb:flush" p.Cost.tlb_flush;
  Cost.charge t.cost "tlb:shootdown"
    (p.Cost.tlb_shootdown *. float_of_int (t.ncpus - 1))

let invalidate_page t =
  Cost.charge t.cost "tlb:invlpg" (Cost.params t.cost).Cost.tlb_invlpg

let invalidate_pages t ~n =
  if n < 0 then invalid_arg "Tlb.invalidate_pages: negative count";
  if n > 0 then
    Cost.charge ~n t.cost "tlb:invlpg"
      ((Cost.params t.cost).Cost.tlb_invlpg *. float_of_int n)

let stats t =
  {
    local_flushes = Cost.count t.cost "tlb:flush";
    shootdowns = Cost.count t.cost "tlb:shootdown";
    invalidations = Cost.count t.cost "tlb:invlpg";
  }
