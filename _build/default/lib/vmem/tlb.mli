(** TLB cost model.

    The simulator does not cache translations (correctness never depends
    on a TLB); this module only *accounts* for the flush and shootdown
    work that real kernels must perform — the costs fork's COW downgrade
    forces onto every CPU running the parent. *)

type t

type stats = {
  local_flushes : int;
  shootdowns : int;  (** full-AS remote flushes (one event, all CPUs) *)
  invalidations : int;  (** single-page invalidations *)
}

val create : ?cpus:int -> Cost.t -> t
(** [cpus] is how many CPUs may concurrently run threads of one address
    space; shootdowns charge per remote CPU. Default 4.
    @raise Invalid_argument if [cpus < 1]. *)

val cpus : t -> int

val flush_local : t -> unit
(** Full flush on the current CPU (e.g. context switch to a new AS). *)

val shootdown : t -> unit
(** Flush an address space on every CPU: one local flush plus an IPI to
    each of the [cpus - 1] remote CPUs. *)

val invalidate_page : t -> unit
(** Single-page invalidation on the current CPU (COW break). *)

val invalidate_pages : t -> n:int -> unit
(** [n] single-page invalidations charged at once — same cycles and
    event count as [n] {!invalidate_page} calls. No-op at [n = 0].
    @raise Invalid_argument if [n < 0]. *)

val stats : t -> stats
(** Derived from the event counts the shared {!Cost} meter recorded
    under the ["tlb:*"] categories, so [Cost.reset] also resets these. *)
