(** 4-level radix page table over packed {!Pte} entries.

    This is the data structure whose wholesale duplication makes fork's
    cost proportional to the parent's address-space size: {!clone_cow}
    walks and copies every table page containing a present entry, which
    is exactly what a COW fork must do, while a freshly spawned process
    starts from an empty table. *)

type t

val create : unit -> t

val map : t -> vpn:int -> Pte.t -> unit
(** Install (or replace) the entry for virtual page [vpn], allocating
    intermediate table nodes as needed.
    @raise Invalid_argument if [vpn] is out of range or the PTE is
    absent. *)

val unmap : t -> vpn:int -> Pte.t
(** Remove and return the entry ({!Pte.absent} if none was present). *)

val lookup : t -> vpn:int -> Pte.t
(** {!Pte.absent} when unmapped. *)

val update : t -> vpn:int -> (Pte.t -> Pte.t) -> bool
(** Apply a function to a *present* entry in place; returns false (and
    does nothing) when the page is unmapped. The function must return a
    present entry. *)

val present_count : t -> int
(** Number of present leaf entries. *)

val node_count : t -> int
(** Number of table pages currently allocated, root included. *)

val fold_present : t -> init:'a -> f:('a -> vpn:int -> Pte.t -> 'a) -> 'a
(** Iterate all present entries in increasing vpn order. *)

val clone_cow : t -> frames:Frame.t -> cost:Cost.t -> t
(** Duplicate the table for a forked child: every table node is copied
    (charged as [pt_node_copy]), every present entry visited (charged as
    [pte_copy]); writable entries are downgraded to read-only+COW in
    {b both} parent and child, and each referenced frame's refcount is
    incremented. The caller is responsible for the parent TLB flush this
    downgrade requires. *)

val clear : t -> frames:Frame.t -> int
(** Drop every present entry, decrementing frame refcounts; returns the
    number of entries dropped. Used by exec and process teardown. *)
