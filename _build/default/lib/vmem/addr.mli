(** Virtual-address arithmetic and paging geometry.

    The simulated MMU uses the x86-64 4 KiB / 4-level layout: 12 offset
    bits and four 9-bit translation levels, i.e. a 48-bit canonical
    virtual address space. Addresses and page numbers are plain [int]s
    (OCaml ints are 63-bit on this platform, so the full 48-bit space
    fits). *)

val page_size : int (* 4096 *)
val page_shift : int (* 12 *)
val levels : int (* 4 *)
val index_bits : int (* 9 per level *)
val entries_per_table : int (* 512 *)
val va_bits : int (* 48 *)
val max_va : int
(** Exclusive upper bound of the canonical address space, [1 lsl 48]. *)

val is_page_aligned : int -> bool
val align_down : int -> int
val align_up : int -> int
(** [align_up a] rounds up to the next page boundary; values within
    [page_size] of [max_int] are not supported. *)

val page_number : int -> int
(** Virtual page number containing address [a]. *)

val page_offset : int -> int
val addr_of_page : int -> int
val pages_spanning : int -> int -> int
(** [pages_spanning addr len] is the number of pages touched by the byte
    range [[addr, addr+len)]; 0 when [len <= 0]. *)

val table_index : level:int -> int -> int
(** [table_index ~level vpn] extracts the radix index of [vpn] at
    [level]; level 0 is the leaf table, level [levels-1] the root.
    @raise Invalid_argument if [level] is out of range. *)

val valid : int -> bool
(** Address lies in [[0, max_va)]. *)

val pp : Format.formatter -> int -> unit
(** Hexadecimal rendering, e.g. [0x00007f0000001000]. *)
