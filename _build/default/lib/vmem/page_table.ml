type node =
  | Leaf of int array  (** packed PTEs *)
  | Inner of node option array

type t = {
  mutable root : node;
  mutable present : int;
  mutable nodes : int;
}

let new_leaf () = Leaf (Array.make Addr.entries_per_table Pte.absent)
let new_inner () = Inner (Array.make Addr.entries_per_table None)

let create () = { root = new_inner (); present = 0; nodes = 1 }

let check_vpn vpn =
  if vpn < 0 || vpn >= Addr.max_va lsr Addr.page_shift then
    invalid_arg "Page_table: vpn out of range"

(* Walk from the root (level = levels-1) down to the leaf, optionally
   creating missing nodes. Returns the leaf array. *)
let rec walk t node level vpn ~create_missing =
  match node with
  | Leaf entries -> Some entries
  | Inner children ->
    let idx = Addr.table_index ~level vpn in
    (match children.(idx) with
    | Some child -> walk t child (level - 1) vpn ~create_missing
    | None ->
      if not create_missing then None
      else begin
        let child = if level = 1 then new_leaf () else new_inner () in
        children.(idx) <- Some child;
        t.nodes <- t.nodes + 1;
        walk t child (level - 1) vpn ~create_missing
      end)

let map t ~vpn pte =
  check_vpn vpn;
  if not (Pte.present pte) then invalid_arg "Page_table.map: absent pte";
  match walk t t.root (Addr.levels - 1) vpn ~create_missing:true with
  | None -> assert false
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    if not (Pte.present entries.(idx)) then t.present <- t.present + 1;
    entries.(idx) <- pte

let unmap t ~vpn =
  check_vpn vpn;
  match walk t t.root (Addr.levels - 1) vpn ~create_missing:false with
  | None -> Pte.absent
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    let old = entries.(idx) in
    if Pte.present old then begin
      entries.(idx) <- Pte.absent;
      t.present <- t.present - 1
    end;
    old

let lookup t ~vpn =
  check_vpn vpn;
  match walk t t.root (Addr.levels - 1) vpn ~create_missing:false with
  | None -> Pte.absent
  | Some entries -> entries.(Addr.table_index ~level:0 vpn)

let update t ~vpn f =
  check_vpn vpn;
  match walk t t.root (Addr.levels - 1) vpn ~create_missing:false with
  | None -> false
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    let old = entries.(idx) in
    if not (Pte.present old) then false
    else begin
      let updated = f old in
      if not (Pte.present updated) then
        invalid_arg "Page_table.update: function returned absent pte";
      entries.(idx) <- updated;
      true
    end

let present_count t = t.present
let node_count t = t.nodes

let fold_present t ~init ~f =
  (* vpn is reconstructed incrementally: at each level the child index
     contributes 9 more bits. *)
  let rec go node level vpn_prefix acc =
    match node with
    | Leaf entries ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        if Pte.present entries.(i) then
          acc := f !acc ~vpn:((vpn_prefix lsl Addr.index_bits) lor i)
              entries.(i)
      done;
      !acc
    | Inner children ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        match children.(i) with
        | None -> ()
        | Some child ->
          acc :=
            go child (level - 1) ((vpn_prefix lsl Addr.index_bits) lor i) !acc
      done;
      !acc
  in
  go t.root (Addr.levels - 1) 0 init

let clone_cow t ~frames ~cost =
  let p = Cost.params cost in
  let nodes = ref 0 in
  let present = ref 0 in
  let rec copy node =
    incr nodes;
    Cost.charge cost "fork:pt-node" p.Cost.pt_node_copy;
    match node with
    | Leaf entries ->
      let dst = Array.make Addr.entries_per_table Pte.absent in
      for i = 0 to Addr.entries_per_table - 1 do
        let pte = entries.(i) in
        if Pte.present pte then begin
          Cost.charge cost "fork:pte" p.Cost.pte_copy;
          incr present;
          Frame.incref frames (Pte.frame pte);
          let shared =
            if (Pte.perm pte).Perm.write then
              (* downgrade to read-only COW in both tables *)
              Pte.with_cow
                (Pte.with_perm pte
                   { (Pte.perm pte) with Perm.write = false })
                true
            else pte
          in
          entries.(i) <- shared;
          dst.(i) <- shared
        end
      done;
      Leaf dst
    | Inner children ->
      let dst = Array.make Addr.entries_per_table None in
      for i = 0 to Addr.entries_per_table - 1 do
        match children.(i) with
        | None -> ()
        | Some child -> dst.(i) <- Some (copy child)
      done;
      Inner dst
  in
  let root = copy t.root in
  { root; present = !present; nodes = !nodes }

let clear t ~frames =
  let dropped =
    fold_present t ~init:0 ~f:(fun n ~vpn:_ pte ->
        ignore (Frame.decref frames (Pte.frame pte));
        n + 1)
  in
  t.root <- new_inner ();
  t.present <- 0;
  t.nodes <- 1;
  dropped
