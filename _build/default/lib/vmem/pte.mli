(** Packed page-table entries.

    A PTE is a single immutable [int]: bit 0 = present, bits 1-3 =
    read/write/exec, bit 4 = copy-on-write, bit 5 = accessed, bit 6 =
    dirty; the frame number occupies the bits above {!frame_shift}.
    Packing keeps a fully-mapped multi-GiB address space cheap (one int
    per page). *)

type t = int

val absent : t
val present : t -> bool

val make : frame:Frame.frame -> perm:Perm.t -> ?cow:bool -> unit -> t
(** A fresh present entry; [cow] defaults to false.
    @raise Invalid_argument on a negative frame. *)

val frame : t -> Frame.frame
val perm : t -> Perm.t
val cow : t -> bool
val accessed : t -> bool
val dirty : t -> bool

val with_perm : t -> Perm.t -> t
val with_cow : t -> bool -> t
val with_frame : t -> Frame.frame -> t
val mark_accessed : t -> t
val mark_dirty : t -> t

val frame_shift : int

val pp : Format.formatter -> t -> unit
