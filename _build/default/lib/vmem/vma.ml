type kind =
  | Anon
  | Heap
  | Stack
  | Text of { path : string }
  | Data of { path : string }
  | File of { path : string; offset : int }
  | Guard

type t = { perm : Perm.t; kind : kind; shared : bool }

let make ?(shared = false) ~perm ~kind () = { perm; kind; shared }

let crop ~old_start ~start ~stop:_ t =
  match t.kind with
  | File { path; offset } ->
    { t with kind = File { path; offset = offset + (start - old_start) } }
  | Anon | Heap | Stack | Text _ | Data _ | Guard -> t

let is_file_backed t =
  match t.kind with
  | File _ | Text _ | Data _ -> true
  | Anon | Heap | Stack | Guard -> false

let kind_name t =
  match t.kind with
  | Anon -> "anon"
  | Heap -> "heap"
  | Stack -> "stack"
  | Text _ -> "text"
  | Data _ -> "data"
  | File _ -> "file"
  | Guard -> "guard"

let pp ppf t =
  Format.fprintf ppf "%a %s%s" Perm.pp t.perm (kind_name t)
    (if t.shared then " shared" else "")
