(** Page / region access permissions. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val r : t
val rw : t
val rx : t
val rwx : t

val allows : t -> t -> bool
(** [allows granted requested] is true when every access in [requested]
    is permitted by [granted]. *)

val union : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders like ["rw-"]. *)

val to_string : t -> string
