(** Non-overlapping half-open interval map, the backing store for a
    process's VMA list.

    Intervals are [[start, stop)] with [start < stop]. The structure is
    persistent (fork shares it for free, mirroring how cheap the VMA
    *list* copy is compared to the page-table copy). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val add : start:int -> stop:int -> 'a -> 'a t -> ('a t, [> `Overlap ]) result
(** @raise Invalid_argument if [start >= stop] or [start < 0]. *)

val find_containing : int -> 'a t -> (int * int * 'a) option
(** The interval containing a point, if any. *)

val mem : int -> 'a t -> bool

val overlapping : start:int -> stop:int -> 'a t -> (int * int * 'a) list
(** All intervals intersecting [[start, stop)], in increasing order. *)

val carve :
  start:int ->
  stop:int ->
  crop:(old_start:int -> start:int -> stop:int -> 'a -> 'a) ->
  'a t ->
  'a t * (int * int * 'a) list
(** [carve ~start ~stop ~crop m] removes the range [[start, stop)] from
    the map. Intervals straddling the boundary are split; [crop] is
    applied to every fragment (kept or removed) so payloads that carry
    range-dependent data (e.g. file offsets) can be adjusted. Returns the
    new map and the removed fragments in increasing order. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val to_list : 'a t -> (int * int * 'a) list

val find_gap : min:int -> max:int -> len:int -> 'a t -> int option
(** Lowest [start >= min] such that [[start, start+len)] fits below
    [max] without touching any interval. @raise Invalid_argument if
    [len <= 0]. *)

val total_length : 'a t -> int
(** Sum of interval lengths. *)
