let page_shift = 12
let page_size = 1 lsl page_shift
let levels = 4
let index_bits = 9
let entries_per_table = 1 lsl index_bits
let va_bits = page_shift + (levels * index_bits)
let max_va = 1 lsl va_bits
let is_page_aligned a = a land (page_size - 1) = 0
let align_down a = a land lnot (page_size - 1)
let align_up a = align_down (a + page_size - 1)
let page_number a = a lsr page_shift
let page_offset a = a land (page_size - 1)
let addr_of_page p = p lsl page_shift

let pages_spanning addr len =
  if len <= 0 then 0
  else page_number (addr + len - 1) - page_number addr + 1

let table_index ~level vpn =
  if level < 0 || level >= levels then invalid_arg "Addr.table_index: level";
  (vpn lsr (level * index_bits)) land (entries_per_table - 1)

let valid a = a >= 0 && a < max_va
let pp ppf a = Format.fprintf ppf "0x%016x" a
