(** Call-site scanner for C-like source.

    Lexes well enough to ignore comments, string and character literals,
    then counts occurrences of each tracked identifier immediately
    followed by ['('] — the same heuristic the paper-style "how much code
    still forks" surveys use. Identifiers embedded in longer names
    ([my_fork_helper]) never match. *)

type result = {
  lines : int;
  counts : (Api.t * int) list;  (** every tracked API, zeroes included *)
}

val count : result -> Api.t -> int

val scan_string : string -> result

val scan_file : string -> (result, string) Result.t
(** Reads the file; [Error] carries a message on I/O failure. *)

type dir_report = {
  files_scanned : int;
  total_lines : int;
  total : (Api.t * int) list;
}

val scan_directory : ?extensions:string list -> string -> dir_report
(** Recursively scan files with the given extensions (default
    [[".c"; ".h"; ".cc"; ".cpp"; ".hh"]]). Unreadable files are skipped. *)

val scan_directory_files :
  ?extensions:string list -> string -> (string * result) list
(** Per-file results (path, scan), in walk order. Same filtering and
    error tolerance as {!scan_directory}. *)

val total_hits : result -> int
(** Sum of call sites across every tracked API. *)
