type result = {
  lines : int;
  counts : (Api.t * int) list;
}

let count r api =
  match List.assoc_opt api r.counts with Some n -> n | None -> 0

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')

type mode = Code | Line_comment | Block_comment | Str | Chr

let scan_string src =
  let n = String.length src in
  let tally = Hashtbl.create 8 in
  let lines = ref 1 in
  let bump api =
    Hashtbl.replace tally api (1 + Option.value ~default:0 (Hashtbl.find_opt tally api))
  in
  (* called with the span of a complete identifier: count it if it is a
     tracked name and the next non-space character is '(' *)
  let consider start stop =
    match Api.of_identifier (String.sub src start (stop - start)) with
    | None -> ()
    | Some api ->
      let rec next i =
        if i >= n then ()
        else
          match src.[i] with
          | ' ' | '\t' -> next (i + 1)
          | '(' -> bump api
          | _ -> ()
      in
      next stop
  in
  let rec go i mode =
    if i >= n then ()
    else begin
      let c = src.[i] in
      if c = '\n' then incr lines;
      match mode with
      | Line_comment -> go (i + 1) (if c = '\n' then Code else Line_comment)
      | Block_comment ->
        if c = '*' && i + 1 < n && src.[i + 1] = '/' then go (i + 2) Code
        else go (i + 1) Block_comment
      | Str ->
        if c = '\\' then go (i + 2) Str
        else if c = '"' then go (i + 1) Code
        else go (i + 1) Str
      | Chr ->
        if c = '\\' then go (i + 2) Chr
        else if c = '\'' then go (i + 1) Code
        else go (i + 1) Chr
      | Code ->
        if c = '/' && i + 1 < n && src.[i + 1] = '/' then go (i + 2) Line_comment
        else if c = '/' && i + 1 < n && src.[i + 1] = '*' then
          go (i + 2) Block_comment
        else if c = '"' then go (i + 1) Str
        else if c = '\'' then go (i + 1) Chr
        else if is_ident_start c then begin
          let stop = ref (i + 1) in
          while !stop < n && is_ident src.[!stop] do incr stop done;
          consider i !stop;
          go !stop Code
        end
        else go (i + 1) Code
    end
  in
  go 0 Code;
  {
    lines = !lines;
    counts =
      List.map
        (fun api ->
          (api, Option.value ~default:0 (Hashtbl.find_opt tally api)))
        Api.all;
  }

let scan_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (scan_string contents)
  | exception Sys_error msg -> Error msg

type dir_report = {
  files_scanned : int;
  total_lines : int;
  total : (Api.t * int) list;
}

let total_hits r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts

let scan_directory_files ?(extensions = [ ".c"; ".h"; ".cc"; ".cpp"; ".hh" ])
    root =
  let out = ref [] in
  let want path =
    List.exists (fun ext -> Filename.check_suffix path ext) extensions
  in
  let scan_into path =
    match scan_file path with
    | Ok r -> out := (path, r) :: !out
    | Error _ -> ()
  in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path
          else if want path then scan_into path)
        entries
  in
  (match Sys.is_directory root with
  | true -> walk root
  | false -> scan_into root
  | exception Sys_error _ -> ());
  List.rev !out

let scan_directory ?extensions root =
  let per_file = scan_directory_files ?extensions root in
  let tally = Hashtbl.create 8 in
  let lines = ref 0 in
  List.iter
    (fun (_, r) ->
      lines := !lines + r.lines;
      List.iter
        (fun (api, n) ->
          Hashtbl.replace tally api
            (n + Option.value ~default:0 (Hashtbl.find_opt tally api)))
        r.counts)
    per_file;
  {
    files_scanned = List.length per_file;
    total_lines = !lines;
    total =
      List.map
        (fun api ->
          (api, Option.value ~default:0 (Hashtbl.find_opt tally api)))
        Api.all;
  }
