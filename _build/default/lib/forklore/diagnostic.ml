type severity = Error | Warn | Info

let severity_name = function Error -> "error" | Warn -> "warn" | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warn" -> Some Warn
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  citation : string;
  hint : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else String.compare a.rule b.rule

let equal a b = a = b
let is_error d = d.severity = Error

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s@\n    paper: %s@\n    hint: %s"
    d.file d.line d.col
    (severity_name d.severity)
    d.rule d.message d.citation d.hint

let to_string d = Format.asprintf "%a" pp d

(* ------------------------------------------------------------------ *)
(* JSON (SARIF-flavoured, hand-rolled: no json dependency in the tree) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"citation\":\"%s\",\"hint\":\"%s\"}"
    (json_escape d.rule)
    (severity_name d.severity)
    (json_escape d.file) d.line d.col (json_escape d.message)
    (json_escape d.citation) (json_escape d.hint)

let report_to_json ds =
  let ds = List.sort compare ds in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"tool\": \"forklint\",\n  \"version\": \"1\",\n";
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (to_json d))
    ds;
  if ds <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"error\": %d, \"warn\": %d, \"info\": %d}\n}\n"
       (count Error ds) (count Warn ds) (count Info ds));
  Buffer.contents buf

(* A tiny recursive-descent parser for the subset of JSON the emitter
   above produces (objects, arrays, strings, non-negative integers), so
   reports round-trip without adding a dependency. *)

type jv =
  | Jobj of (string * jv) list
  | Jarr of jv list
  | Jstr of string
  | Jint of int

exception Bad of string

let parse_json s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !i)) in
  let skip_ws () =
    while
      !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r')
    do
      incr i
    done
  in
  let expect c =
    skip_ws ();
    if !i < n && s.[!i] = c then incr i
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
          if !i + 1 >= n then fail "dangling escape";
          (match s.[!i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !i + 5 >= n then fail "short \\u escape";
            let hex = String.sub s (!i + 2) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            i := !i + 4
          | _ -> fail "unknown escape");
          i := !i + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    if !i >= n then fail "unexpected end of input"
    else
      match s.[!i] with
      | '{' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = '}' then begin
          incr i;
          Jobj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            let key = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            if !i < n && s.[!i] = ',' then begin
              incr i;
              members ()
            end
            else expect '}'
          in
          members ();
          Jobj (List.rev !fields)
        end
      | '[' ->
        incr i;
        skip_ws ();
        if !i < n && s.[!i] = ']' then begin
          incr i;
          Jarr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            if !i < n && s.[!i] = ',' then begin
              incr i;
              elements ()
            end
            else expect ']'
          in
          elements ();
          Jarr (List.rev !items)
        end
      | '"' -> Jstr (parse_string ())
      | c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !i in
        if s.[!i] = '-' then incr i;
        while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
          incr i
        done;
        Jint (int_of_string (String.sub s start (!i - start)))
      | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then fail "trailing garbage";
  v

let jfield key = function
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let jstr = function Some (Jstr s) -> Some s | _ -> None
let jint = function Some (Jint n) -> Some n | _ -> None

let of_json_finding jv =
  match
    ( jstr (jfield "rule" jv),
      Option.bind (jstr (jfield "severity" jv)) severity_of_name,
      jstr (jfield "file" jv),
      jint (jfield "line" jv),
      jint (jfield "col" jv),
      jstr (jfield "message" jv),
      jstr (jfield "citation" jv),
      jstr (jfield "hint" jv) )
  with
  | ( Some rule,
      Some severity,
      Some file,
      Some line,
      Some col,
      Some message,
      Some citation,
      Some hint ) ->
    Stdlib.Ok { rule; severity; file; line; col; message; citation; hint }
  | _ -> Stdlib.Error "finding object missing or ill-typed field"

let report_of_json s =
  match parse_json s with
  | exception Bad msg -> Stdlib.Error msg
  | jv -> (
    match jfield "findings" jv with
    | Some (Jarr items) ->
      let rec go acc = function
        | [] -> Stdlib.Ok (List.rev acc)
        | item :: rest -> (
          match of_json_finding item with
          | Stdlib.Ok d -> go (d :: acc) rest
          | Stdlib.Error e -> Stdlib.Error e)
      in
      go [] items
    | Some _ -> Stdlib.Error "\"findings\" is not an array"
    | None -> Stdlib.Error "no \"findings\" field")
