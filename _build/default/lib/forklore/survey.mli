(** Aggregation of scans into the E7 usage table. *)

type row = {
  api : Api.t;
  packages_using : int;
  call_sites : int;
  package_share : float;  (** fraction of packages with >= 1 call site *)
}

val of_packages : Corpus.package list -> row list
(** Scan every synthetic package and aggregate. Rows are in {!Api.all}
    order. *)

val validate : Corpus.package list -> (unit, string) Result.t
(** Check the scanner against every package's ground truth; [Error]
    names the first mismatching package and API. *)

val pp_row : Format.formatter -> row -> unit
