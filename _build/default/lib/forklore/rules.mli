(** The forklint rule registry.

    Each rule encodes one of the paper's fork hazards as a checkable
    pattern over the {!Lexer} token stream, with a severity, the paper
    section it operationalises and a fix hint naming the spawnlib
    equivalent. [Ksim.Lint] reuses the same registry metadata for its
    dynamic (trace-replay) findings, so static and dynamic layers report
    identical rule ids.

    Shipped rules:
    - [fork-in-threads] (Error): fork after pthread_create in the file.
    - [fork-no-exec] (Warn): child branch never reaches exec*/_exit.
    - [stdio-before-fork] (Warn): buffered stdio written, no fflush,
      then fork.
    - [unsafe-child-work] (Warn): malloc/stdio/locking between fork and
      exec.
    - [fd-no-cloexec] (Warn): open/socket/pipe without CLOEXEC in a file
      that creates processes.
    - [vfork-misuse] (Error): vfork child doing anything beyond
      exec/_exit (including return). *)

type call = {
  name : string;
  line : int;
  col : int;
  tok_index : int;
  depth : int;
}

type ctx = {
  file : string;
  toks : Lexer.token array;
  depths : int array;
  calls : call list;
}

type finding = { f_line : int; f_col : int; f_message : string }

type t = {
  id : string;
  severity : Diagnostic.severity;
  summary : string;
  citation : string;
  hint : string;
  check : ctx -> finding list;
}

val all : t list
(** Registry, in documentation order. *)

val find : string -> t option
(** Look a rule up by id (also used by [Ksim.Lint]). *)

val build_ctx : file:string -> Lexer.token list -> ctx

val make_diagnostic :
  t -> file:string -> line:int -> col:int -> message:string -> Diagnostic.t
(** Attach registry metadata (severity, citation, hint) to a finding. *)

val check_string : ?rules:t list -> file:string -> string -> Diagnostic.t list
(** Run the registry (default: {!all}) over one file's source; findings
    come back in {!Diagnostic.compare} order. *)

val check_file : ?rules:t list -> string -> (Diagnostic.t list, string) result
(** [Error] carries the I/O failure message. *)
