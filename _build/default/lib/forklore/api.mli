(** The process-creation APIs tracked by the usage survey (E7). *)

type t =
  | Fork
  | Vfork
  | Clone
  | Posix_spawn
  | System
  | Popen
  | Exec

val all : t list

val name : t -> string
(** Display name, e.g. ["posix_spawn"]. *)

val identifiers : t -> string list
(** C identifiers whose call sites count toward this API, e.g. [Exec]
    covers the whole execve/execv/execvp/execl family. *)

val of_identifier : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
