type kind =
  | Ident of string
  | Number of string
  | Str of string
  | Chr of string
  | Punct of string

type token = { kind : kind; line : int; col : int }

let count_lines src =
  let n = ref 1 in
  String.iter (fun c -> if c = '\n' then incr n) src;
  !n

(* Reserved words must not look like call sites (`if (...)`) to the rule
   engine, so they are classified here rather than in every rule. *)
let keywords =
  [
    "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do";
    "double"; "else"; "enum"; "extern"; "float"; "for"; "goto"; "if";
    "inline"; "int"; "long"; "register"; "restrict"; "return"; "short";
    "signed"; "sizeof"; "static"; "struct"; "switch"; "typedef"; "union";
    "unsigned"; "void"; "volatile"; "while"; "_Alignas"; "_Alignof";
    "_Atomic"; "_Bool"; "_Generic"; "_Noreturn"; "_Static_assert";
    "_Thread_local";
  ]

let is_keyword id = List.mem id keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Two-character operators kept whole so columns of what follows stay
   honest; longer operators (<<=, ...) split into these plus '='. *)
let two_char_ops =
  [
    "->"; "++"; "--"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "##";
  ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let emit ~line ~col kind = toks := { kind; line; col } :: !toks in
  let cur () = src.[!i] in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    if cur () = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  (* consume a backslash escape inside a literal; tolerates EOF *)
  let skip_escape () =
    advance ();
    if !i < n then advance ()
  in
  while !i < n do
    let c = cur () in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && cur () <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if cur () = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done
      (* an unterminated block comment swallows the rest of the file *)
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match cur () with
        | '\\' ->
          Buffer.add_char buf '\\';
          (match peek 1 with Some e -> Buffer.add_char buf e | None -> ());
          skip_escape ()
        | '"' ->
          advance ();
          closed := true
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      emit ~line:l ~col:co (Str (Buffer.contents buf))
    end
    else if c = '\'' then begin
      advance ();
      let buf = Buffer.create 4 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match cur () with
        | '\\' ->
          Buffer.add_char buf '\\';
          (match peek 1 with Some e -> Buffer.add_char buf e | None -> ());
          skip_escape ()
        | '\'' ->
          advance ();
          closed := true
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      emit ~line:l ~col:co (Chr (Buffer.contents buf))
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 8 in
      while !i < n && is_ident (cur ()) do
        Buffer.add_char buf (cur ());
        advance ()
      done;
      emit ~line:l ~col:co (Ident (Buffer.contents buf))
    end
    else if is_digit c then begin
      (* loose C number: digits, hex/bin letters, suffixes, '.', exponent
         signs are absorbed; good enough to keep them out of idents *)
      let buf = Buffer.create 8 in
      while
        !i < n
        && (is_ident (cur ())
           || cur () = '.'
           || ((cur () = '+' || cur () = '-')
              && Buffer.length buf > 0
              &&
              match Buffer.nth buf (Buffer.length buf - 1) with
              | 'e' | 'E' | 'p' | 'P' -> true
              | _ -> false))
      do
        Buffer.add_char buf (cur ());
        advance ()
      done;
      emit ~line:l ~col:co (Number (Buffer.contents buf))
    end
    else begin
      let two =
        match peek 1 with
        | Some c2 ->
          let s = Printf.sprintf "%c%c" c c2 in
          if List.mem s two_char_ops then Some s else None
        | None -> None
      in
      match two with
      | Some s ->
        advance ();
        advance ();
        emit ~line:l ~col:co (Punct s)
      | None ->
        advance ();
        emit ~line:l ~col:co (Punct (String.make 1 c))
    end
  done;
  List.rev !toks
