type t =
  | Fork
  | Vfork
  | Clone
  | Posix_spawn
  | System
  | Popen
  | Exec

let all = [ Fork; Vfork; Clone; Posix_spawn; System; Popen; Exec ]

let name = function
  | Fork -> "fork"
  | Vfork -> "vfork"
  | Clone -> "clone"
  | Posix_spawn -> "posix_spawn"
  | System -> "system"
  | Popen -> "popen"
  | Exec -> "exec*"

let identifiers = function
  | Fork -> [ "fork" ]
  | Vfork -> [ "vfork" ]
  | Clone -> [ "clone"; "clone3" ]
  | Posix_spawn -> [ "posix_spawn"; "posix_spawnp" ]
  | System -> [ "system" ]
  | Popen -> [ "popen" ]
  | Exec -> [ "execve"; "execv"; "execvp"; "execvpe"; "execl"; "execlp"; "execle" ]

let table =
  List.concat_map (fun api -> List.map (fun id -> (id, api)) (identifiers api)) all

let of_identifier id = List.assoc_opt id table
let pp ppf t = Format.pp_print_string ppf (name t)
let equal a b = a = b
