type row = {
  api : Api.t;
  packages_using : int;
  call_sites : int;
  package_share : float;
}

let of_packages packages =
  let scans =
    List.map (fun p -> Scanner.scan_string p.Corpus.source) packages
  in
  let total = max 1 (List.length packages) in
  List.map
    (fun api ->
      let using, sites =
        List.fold_left
          (fun (using, sites) scan ->
            let n = Scanner.count scan api in
            ((if n > 0 then using + 1 else using), sites + n))
          (0, 0) scans
      in
      {
        api;
        packages_using = using;
        call_sites = sites;
        package_share = float_of_int using /. float_of_int total;
      })
    Api.all

let validate packages =
  let check p =
    let scan = Scanner.scan_string p.Corpus.source in
    List.find_map
      (fun api ->
        let got = Scanner.count scan api in
        let want = Corpus.truth_count p api in
        if got <> want then
          Some
            (Printf.sprintf "%s: %s expected %d got %d" p.Corpus.name
               (Api.name api) want got)
        else None)
      Api.all
  in
  match List.find_map check packages with
  | Some msg -> Error msg
  | None -> Ok ()

let pp_row ppf r =
  Format.fprintf ppf "%-12s %5d pkgs (%4.1f%%) %6d call sites" (Api.name r.api)
    r.packages_using (100.0 *. r.package_share) r.call_sites
