(** Position-tracking tokenizer for C-like source.

    Splits source into identifiers, numbers, string/char literals and
    punctuation, each stamped with its 1-based [line]/[col] start.
    Comments and whitespace are dropped; string and character literals
    keep their (raw, still-escaped) contents. The lexer is deliberately
    tolerant: unterminated literals and block comments consume the rest
    of the input instead of failing, so it can be pointed at arbitrary
    files. Both {!Scanner} (the call-site survey) and {!Rules} (the
    forklint rule engine) run on this token stream. *)

type kind =
  | Ident of string
  | Number of string
  | Str of string  (** contents without the quotes, escapes unprocessed *)
  | Chr of string
  | Punct of string  (** single char, or a common two-char operator *)

type token = { kind : kind; line : int; col : int }

val tokenize : string -> token list

val is_keyword : string -> bool
(** C reserved words; [if]/[while]/[return] etc. must not be mistaken
    for function calls by the rule engine. *)

val count_lines : string -> int
(** 1 + number of newlines (an empty string has one line). *)
