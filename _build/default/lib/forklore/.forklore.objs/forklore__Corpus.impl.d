lib/forklore/corpus.ml: Api Array Buffer Hashtbl List Option Printf Prng String
