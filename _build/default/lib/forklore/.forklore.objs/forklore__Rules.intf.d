lib/forklore/rules.mli: Diagnostic Lexer
