lib/forklore/scanner.ml: Api Array Filename Hashtbl In_channel Lexer List Option Sys
