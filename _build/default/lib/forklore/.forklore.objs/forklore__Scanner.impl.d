lib/forklore/scanner.ml: Api Array Filename Hashtbl In_channel List Option String Sys
