lib/forklore/diagnostic.ml: Buffer Char Format Int List Option Printf Stdlib String
