lib/forklore/survey.mli: Api Corpus Format Result
