lib/forklore/rules.ml: Array Diagnostic In_channel Lexer List Printf
