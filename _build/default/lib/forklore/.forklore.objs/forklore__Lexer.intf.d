lib/forklore/lexer.mli:
