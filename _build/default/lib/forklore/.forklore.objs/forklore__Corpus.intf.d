lib/forklore/corpus.mli: Api
