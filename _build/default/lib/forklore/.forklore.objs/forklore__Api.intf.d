lib/forklore/api.mli: Format
