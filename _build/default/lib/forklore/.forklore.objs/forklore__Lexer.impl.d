lib/forklore/lexer.ml: Buffer List Printf String
