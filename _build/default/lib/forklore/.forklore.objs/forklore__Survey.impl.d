lib/forklore/survey.ml: Api Corpus Format List Printf Scanner
