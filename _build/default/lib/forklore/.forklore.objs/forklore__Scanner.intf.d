lib/forklore/scanner.mli: Api Result
