lib/forklore/api.ml: Format List
