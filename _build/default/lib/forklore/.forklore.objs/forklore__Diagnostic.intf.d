lib/forklore/diagnostic.mli: Format
