(* The forklint rule registry: each of the paper's fork hazards as a
   checkable pattern over the token stream. The checks are per-file
   heuristics (no cross-translation-unit dataflow): a call site is any
   non-keyword identifier whose next token is '(', and a fork call's
   "child region" extends to the end of the enclosing function (the
   first '}' back at brace depth 0). That is exactly the level of
   approximation the paper's own usage survey works at, and it is
   precise on the labelled hazard corpus. *)

type call = {
  name : string;
  line : int;
  col : int;
  tok_index : int;
  depth : int;  (** brace depth at the call site *)
}

type ctx = {
  file : string;
  toks : Lexer.token array;
  depths : int array;  (** brace depth surrounding each token *)
  calls : call list;  (** in source order *)
}

type finding = { f_line : int; f_col : int; f_message : string }

type t = {
  id : string;
  severity : Diagnostic.severity;
  summary : string;
  citation : string;
  hint : string;
  check : ctx -> finding list;
}

(* ------------------------------------------------------------------ *)
(* Context construction *)

let build_ctx ~file toks =
  let toks = Array.of_list toks in
  let n = Array.length toks in
  let depths = Array.make n 0 in
  let d = ref 0 in
  for i = 0 to n - 1 do
    match toks.(i).Lexer.kind with
    | Lexer.Punct "{" ->
      depths.(i) <- !d;
      incr d
    | Lexer.Punct "}" ->
      d := max 0 (!d - 1);
      depths.(i) <- !d
    | _ -> depths.(i) <- !d
  done;
  let calls = ref [] in
  for i = 0 to n - 2 do
    match (toks.(i).Lexer.kind, toks.(i + 1).Lexer.kind) with
    | Lexer.Ident name, Lexer.Punct "(" when not (Lexer.is_keyword name) ->
      calls :=
        {
          name;
          line = toks.(i).Lexer.line;
          col = toks.(i).Lexer.col;
          tok_index = i;
          depth = depths.(i);
        }
        :: !calls
    | _ -> ()
  done;
  { file; toks; depths; calls = List.rev !calls }

(* First token index after [idx] that closes the enclosing function:
   a '}' back at depth 0. Array length when the file ends first. *)
let region_end ctx idx =
  let n = Array.length ctx.toks in
  let rec go i =
    if i >= n then n
    else
      match ctx.toks.(i).Lexer.kind with
      | Lexer.Punct "}" when ctx.depths.(i) = 0 -> i
      | _ -> go (i + 1)
  in
  go (idx + 1)

let calls_between ctx a b =
  List.filter (fun c -> c.tok_index > a && c.tok_index < b) ctx.calls

(* Tokens of a call's argument list: everything between its '(' and the
   matching ')'. *)
let arg_tokens ctx call =
  let n = Array.length ctx.toks in
  let out = ref [] in
  let rec go i depth =
    if i >= n then ()
    else
      match ctx.toks.(i).Lexer.kind with
      | Lexer.Punct "(" ->
        if depth > 0 then out := ctx.toks.(i) :: !out;
        go (i + 1) (depth + 1)
      | Lexer.Punct ")" ->
        if depth > 1 then begin
          out := ctx.toks.(i) :: !out;
          go (i + 1) (depth - 1)
        end
      | _ ->
        if depth > 0 then out := ctx.toks.(i) :: !out;
        go (i + 1) depth
  in
  go (call.tok_index + 1) 0;
  List.rev !out

let has_ident name toks =
  List.exists
    (fun t -> match t.Lexer.kind with Lexer.Ident i -> i = name | _ -> false)
    toks

(* ------------------------------------------------------------------ *)
(* Name sets *)

let fork_names = [ "fork" ]
let vfork_names = [ "vfork" ]

let creation_names =
  [ "fork"; "vfork"; "clone"; "clone3"; "posix_spawn"; "posix_spawnp";
    "system"; "popen" ]

let exec_names =
  [ "execve"; "execv"; "execvp"; "execvpe"; "execl"; "execlp"; "execle";
    "fexecve" ]

(* calls that legitimately end a forked child branch *)
let escape_names = "_exit" :: "_Exit" :: exec_names

let stdio_names =
  [ "printf"; "fprintf"; "vprintf"; "vfprintf"; "fwrite"; "puts"; "fputs";
    "putchar"; "fputc"; "putc" ]

(* not async-signal-safe (or stdio-flushing) work that must not run in
   the window between fork and exec *)
let unsafe_child_names =
  [ "malloc"; "calloc"; "realloc"; "free"; "printf"; "fprintf"; "puts";
    "fopen"; "fclose"; "exit"; "pthread_mutex_lock"; "pthread_mutex_unlock";
    "pthread_create" ]

let mem name names = List.mem name names

let first_call ctx names =
  List.find_opt (fun c -> mem c.name names) ctx.calls

(* first escaping call (exec*/_exit) in (a, b) *)
let first_escape between =
  List.find_opt (fun c -> mem c.name escape_names) between

(* ------------------------------------------------------------------ *)
(* The rules *)

let finding c msg = { f_line = c.line; f_col = c.col; f_message = msg }

let rule_fork_in_threads =
  {
    id = "fork-in-threads";
    severity = Diagnostic.Error;
    summary = "fork() in a program that creates threads";
    citation =
      "\194\1672.1 \"fork doesn't compose\": only the calling thread is \
       replicated; locks held by other threads stay locked forever in the \
       child";
    hint =
      "create the child with posix_spawn (Spawnlib.Spawn) instead of \
       fork+exec; it does not copy thread or lock state";
    check =
      (fun ctx ->
        match first_call ctx [ "pthread_create"; "thrd_create" ] with
        | None -> []
        | Some tc ->
          List.filter_map
            (fun c ->
              if mem c.name fork_names && c.tok_index > tc.tok_index then
                Some
                  (finding c
                     (Printf.sprintf
                        "%s() after this file starts threads \
                         (pthread_create at line %d); in the child only the \
                         forking thread exists and any mutex another thread \
                         held is orphaned"
                        c.name tc.line))
              else None)
            ctx.calls);
  }

let rule_fork_no_exec =
  {
    id = "fork-no-exec";
    severity = Diagnostic.Warn;
    summary = "fork() whose child branch never reaches exec or _exit";
    citation =
      "\194\1672/\194\1674 \"fork is no longer simple\": a child that keeps \
       running inherits the full parent state (buffers, fds, locks, \
       secrets)";
    hint =
      "if the child only runs another program, exec or _exit on the child \
       branch; if it is a worker, spawn a fresh worker image with \
       posix_spawn";
    check =
      (fun ctx ->
        List.filter_map
          (fun c ->
            if not (mem c.name fork_names) then None
            else
              let stop = region_end ctx c.tok_index in
              let later = calls_between ctx c.tok_index stop in
              if first_escape later <> None then None
              else
                Some
                  (finding c
                     (Printf.sprintf
                        "%s() but no exec*/_exit is reachable in the rest of \
                         the enclosing function: the child keeps running \
                         with the parent's entire inherited state"
                        c.name)))
          ctx.calls);
  }

let rule_stdio_before_fork =
  {
    id = "stdio-before-fork";
    severity = Diagnostic.Warn;
    summary = "buffered stdio written before fork without fflush";
    citation =
      "\194\1672.1: user-space stdio buffers are duplicated by fork and \
       flushed by both processes, emitting output twice";
    hint =
      "fflush(NULL) immediately before fork, write(2) directly, or use \
       posix_spawn which shares no buffers";
    check =
      (fun ctx ->
        let last_stdio = ref None in
        List.filter_map
          (fun c ->
            if mem c.name stdio_names then begin
              last_stdio := Some c;
              None
            end
            else if c.name = "fflush" then begin
              last_stdio := None;
              None
            end
            else if mem c.name (fork_names @ vfork_names) then
              match !last_stdio with
              | None -> None
              | Some s ->
                Some
                  (finding c
                     (Printf.sprintf
                        "%s() with unflushed stdio output (%s at line %d): \
                         the child inherits and may re-flush the same bytes"
                        c.name s.name s.line))
            else None)
          ctx.calls);
  }

let rule_unsafe_child_work =
  {
    id = "unsafe-child-work";
    severity = Diagnostic.Warn;
    summary = "non-async-signal-safe work between fork and exec";
    citation =
      "\194\1672.1: after forking a multithreaded process only \
       async-signal-safe code is safe in the child until exec; malloc or \
       stdio can deadlock on an orphaned lock";
    hint =
      "express fd redirections and attribute changes as posix_spawn file \
       actions/attributes and delete the in-child setup code";
    check =
      (fun ctx ->
        List.concat_map
          (fun c ->
            if not (mem c.name fork_names) then []
            else
              let stop = region_end ctx c.tok_index in
              let later = calls_between ctx c.tok_index stop in
              match first_escape later with
              | None -> [] (* fork-no-exec's business *)
              | Some e ->
                List.filter_map
                  (fun o ->
                    if
                      o.tok_index < e.tok_index
                      && mem o.name unsafe_child_names
                    then
                      Some
                        (finding o
                           (Printf.sprintf
                              "%s() between fork (line %d) and %s (line %d); \
                               it is not async-signal-safe and can deadlock \
                               in the forked child"
                              o.name c.line e.name e.line))
                    else None)
                  later)
          ctx.calls);
  }

let rule_fd_no_cloexec =
  {
    id = "fd-no-cloexec";
    severity = Diagnostic.Warn;
    summary = "fd created without CLOEXEC in a file that forks or spawns";
    citation =
      "\194\1673 \"fork is insecure by default\": every fd leaks into every \
       child unless explicitly marked close-on-exec";
    hint =
      "open with O_CLOEXEC (pipe2/SOCK_CLOEXEC for pipes and sockets) and \
       pass the fds a child should receive via posix_spawn file actions";
    check =
      (fun ctx ->
        if first_call ctx creation_names = None then []
        else
          List.filter_map
            (fun c ->
              match c.name with
              | "open" | "open64" | "openat" ->
                if has_ident "O_CLOEXEC" (arg_tokens ctx c) then None
                else
                  Some
                    (finding c
                       (Printf.sprintf
                          "%s() without O_CLOEXEC in a file that creates \
                           processes: the fd is inherited by every child"
                          c.name))
              | "socket" ->
                if has_ident "SOCK_CLOEXEC" (arg_tokens ctx c) then None
                else
                  Some
                    (finding c
                       "socket() without SOCK_CLOEXEC in a file that \
                        creates processes: the fd is inherited by every \
                        child")
              | "pipe" ->
                Some
                  (finding c
                     "pipe() cannot set CLOEXEC atomically; use pipe2(fds, \
                      O_CLOEXEC)")
              | "creat" ->
                Some
                  (finding c
                     "creat() cannot take O_CLOEXEC; use open(..., O_CREAT \
                      | O_CLOEXEC, ...)")
              | _ -> None)
            ctx.calls);
  }

let rule_vfork_misuse =
  {
    id = "vfork-misuse";
    severity = Diagnostic.Error;
    summary = "vfork child doing anything beyond exec/_exit";
    citation =
      "\194\1675/\194\1678: the vfork child borrows the parent's address \
       space and stack; anything but an immediate execve/_exit corrupts the \
       parent";
    hint =
      "keep the vfork child to execve/_exit only (what \
       spawnlib/spawn_stubs.c does), or use posix_spawn";
    check =
      (fun ctx ->
        List.concat_map
          (fun c ->
            if not (mem c.name vfork_names) then []
            else
              let stop = region_end ctx c.tok_index in
              let later = calls_between ctx c.tok_index stop in
              match first_escape later with
              | None ->
                [
                  finding c
                    "vfork() but no execve/_exit is reachable in the \
                     enclosing function; the child shares the parent's \
                     address space and stack";
                ]
              | Some e ->
                let bad_calls =
                  List.filter_map
                    (fun o ->
                      if
                        o.tok_index < e.tok_index
                        && not (mem o.name escape_names)
                      then
                        Some
                          (finding o
                             (Printf.sprintf
                                "%s() in the vfork child window (vfork at \
                                 line %d, %s at line %d): only execve/_exit \
                                 are permitted there"
                                o.name c.line e.name e.line))
                      else None)
                    later
                in
                let bad_return =
                  let rec scan i =
                    if i >= e.tok_index then []
                    else
                      match ctx.toks.(i).Lexer.kind with
                      | Lexer.Ident "return" ->
                        [
                          {
                            f_line = ctx.toks.(i).Lexer.line;
                            f_col = ctx.toks.(i).Lexer.col;
                            f_message =
                              Printf.sprintf
                                "return in the vfork child window (vfork at \
                                 line %d): returning from the borrowed \
                                 stack frame is undefined behaviour"
                                c.line;
                          };
                        ]
                      | _ -> scan (i + 1)
                  in
                  scan (c.tok_index + 1)
                in
                bad_calls @ bad_return)
          ctx.calls);
  }

let all =
  [
    rule_fork_in_threads;
    rule_fork_no_exec;
    rule_stdio_before_fork;
    rule_unsafe_child_work;
    rule_fd_no_cloexec;
    rule_vfork_misuse;
  ]

let find id = List.find_opt (fun r -> r.id = id) all

(* ------------------------------------------------------------------ *)
(* Engine *)

let make_diagnostic r ~file ~line ~col ~message =
  {
    Diagnostic.rule = r.id;
    severity = r.severity;
    file;
    line;
    col;
    message;
    citation = r.citation;
    hint = r.hint;
  }

let check_string ?(rules = all) ~file src =
  let ctx = build_ctx ~file (Lexer.tokenize src) in
  List.concat_map
    (fun r ->
      List.map
        (fun f ->
          make_diagnostic r ~file ~line:f.f_line ~col:f.f_col
            ~message:f.f_message)
        (r.check ctx))
    rules
  |> List.sort Diagnostic.compare

let check_file ?rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (check_string ?rules ~file:path contents)
  | exception Sys_error msg -> Error msg
