module Smap = Map.Make (String)

type t = string Smap.t

let empty = Smap.empty

let of_list l =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l

let current () =
  Array.fold_left
    (fun m binding ->
      match String.index_opt binding '=' with
      | None -> m
      | Some i ->
        Smap.add
          (String.sub binding 0 i)
          (String.sub binding (i + 1) (String.length binding - i - 1))
          m)
    Smap.empty (Unix.environment ())

let to_array t =
  Smap.bindings t
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> Array.of_list

let get t k = Smap.find_opt k t
let set t k v = Smap.add k v t
let unset t k = Smap.remove k t
let merge base overrides = Smap.union (fun _ _ o -> Some o) base overrides
let cardinal = Smap.cardinal
