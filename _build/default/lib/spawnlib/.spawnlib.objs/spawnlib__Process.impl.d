lib/spawnlib/process.ml: Format Unix
