lib/spawnlib/env.mli:
