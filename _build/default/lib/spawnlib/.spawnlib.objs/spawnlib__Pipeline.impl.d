lib/spawnlib/pipeline.ml: Buffer Bytes File_action List Obj Process Result Spawn Unix
