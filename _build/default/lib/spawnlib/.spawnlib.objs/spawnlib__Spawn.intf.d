lib/spawnlib/spawn.mli: File_action Process Retry Unix
