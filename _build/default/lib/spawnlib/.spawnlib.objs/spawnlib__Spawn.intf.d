lib/spawnlib/spawn.mli: File_action Process Unix
