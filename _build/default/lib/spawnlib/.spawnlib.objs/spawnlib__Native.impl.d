lib/spawnlib/native.ml: Array Unix
