lib/spawnlib/file_action.mli: Unix
