lib/spawnlib/pipeline.mli: Process Spawn
