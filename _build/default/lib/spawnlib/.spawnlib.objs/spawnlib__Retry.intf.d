lib/spawnlib/retry.mli:
