lib/spawnlib/spawn.ml: Array Buffer Bytes File_action List Marshal Obj Process Result Retry Unix
