lib/spawnlib/env.ml: Array List Map String Unix
