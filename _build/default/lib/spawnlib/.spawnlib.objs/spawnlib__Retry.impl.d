lib/spawnlib/retry.ml: List
