lib/spawnlib/file_action.ml: Obj Unix
