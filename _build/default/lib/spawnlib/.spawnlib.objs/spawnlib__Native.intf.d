lib/spawnlib/native.mli:
