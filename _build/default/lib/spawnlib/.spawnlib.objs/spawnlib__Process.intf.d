lib/spawnlib/process.mli: Format Unix
