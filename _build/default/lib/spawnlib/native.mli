(** Native process-creation backends (C stubs).

    These are the measured subjects of the Figure-1 reproduction:
    [posix_spawn] (constant-cost creation), [vfork_exec]
    (borrowed-address-space creation) and [fork_exec] (COW fork whose
    cost grows with the parent), plus [fork_exit] to isolate pure fork
    cost. All return the child pid, or the raw [errno] on failure. *)

val posix_spawn :
  prog:string -> argv:string list -> ?env:string list -> unit ->
  (int, int) result

val vfork_exec :
  prog:string -> argv:string list -> ?env:string list -> unit ->
  (int, int) result
(** An exec failure in the child is only observable as exit status 127 —
    the degraded error reporting the paper attributes to this pattern. *)

val fork_exec :
  prog:string -> argv:string list -> ?env:string list -> unit ->
  (int, int) result
(** fork+execve entirely in C (no error pipe), for like-for-like latency
    comparison with the other two backends. *)

val fork_exit : unit -> (int, int) result
(** fork a child that [_exit]s immediately: pure address-space
    duplication cost. *)

val errno_message : int -> string
(** strerror. *)

val wait_exit : int -> int
(** Blocking waitpid; returns the exit code (or 128+signal when
    signalled). Raises [Unix.Unix_error] on wait failure. *)
