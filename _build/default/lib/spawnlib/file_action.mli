(** posix_spawn-style file actions for the portable {!Spawn} engine,
    applied in the child between fork and exec, in list order. *)

type t =
  | Open of { fd : int; path : string; flags : Unix.open_flag list; perm : int }
      (** open [path] and move the result to [fd] *)
  | Dup2 of { src : int; dst : int }
  | Close of int
  | Chdir of string

val openf : ?flags:Unix.open_flag list -> ?perm:int -> fd:int -> string -> t
(** Defaults: [O_WRONLY; O_CREAT; O_TRUNC], perm [0o644]. *)

val dup2 : src:int -> dst:int -> t
val close : int -> t
val chdir : string -> t

val apply : t -> unit
(** Run one action in the current process (the child).
    @raise Unix.Unix_error on failure. *)

val stdout_to_file : string -> t
val stderr_to_file : string -> t
val stdin_from_file : string -> t
