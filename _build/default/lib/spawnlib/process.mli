(** Child-process handles for the real OS. *)

type status = Exited of int | Signaled of int | Stopped of int

val status_of_unix : Unix.process_status -> status
val pp_status : Format.formatter -> status -> unit
val status_equal : status -> status -> bool

type t

val of_pid : int -> t
val pid : t -> int

val wait : t -> status
(** Blocking reap. Calling it twice raises [Unix.Unix_error (ECHILD, ...)]
    like the syscall would. *)

val poll : t -> status option
(** Non-blocking: [None] while the child is still running. *)

val kill : t -> int -> unit
(** Send a signal (use [Sys.sigterm] etc.).
    @raise Unix.Unix_error on a dead pid. *)
