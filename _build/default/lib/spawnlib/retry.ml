type policy = {
  max_attempts : int;
  initial_delay : float;
  backoff : float;
  max_delay : float;
}

let default =
  { max_attempts = 4; initial_delay = 0.001; backoff = 2.0; max_delay = 0.1 }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts < 1";
  if p.initial_delay < 0.0 then invalid_arg "Retry: negative initial_delay";
  if p.backoff < 1.0 then invalid_arg "Retry: backoff < 1";
  if p.max_delay < 0.0 then invalid_arg "Retry: negative max_delay"

let delays p =
  validate p;
  List.init
    (max 0 (p.max_attempts - 1))
    (fun i -> min p.max_delay (p.initial_delay *. (p.backoff ** float_of_int i)))

let with_policy p ~sleep ~should_retry f =
  validate p;
  let rec go attempt delay =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
      if attempt >= p.max_attempts || not (should_retry e) then err
      else begin
        if delay > 0.0 then sleep delay;
        go (attempt + 1) (min p.max_delay (delay *. p.backoff))
      end
  in
  go 1 p.initial_delay
