/* Native process-creation stubs: posix_spawn and vfork+execve.
 *
 * Both return the child pid on success and -errno on failure, so the
 * OCaml side never guesses at errno. The vfork child performs only
 * async-signal-safe work (execve/_exit) before giving the address space
 * back, per the vfork contract. */

#define _GNU_SOURCE
#include <errno.h>
#include <spawn.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

/* Copy an OCaml string array into a NULL-terminated char** the child can
 * use after fork/vfork (allocated with malloc; freed by the parent). */
static char **copy_string_array(value arr)
{
  mlsize_t n = Wosize_val(arr);
  char **out = malloc((n + 1) * sizeof(char *));
  if (out == NULL) return NULL;
  for (mlsize_t i = 0; i < n; i++) {
    out[i] = strdup(String_val(Field(arr, i)));
    if (out[i] == NULL) {
      for (mlsize_t j = 0; j < i; j++) free(out[j]);
      free(out);
      return NULL;
    }
  }
  out[n] = NULL;
  return out;
}

static void free_string_array(char **arr)
{
  if (arr == NULL) return;
  for (char **p = arr; *p != NULL; p++) free(*p);
  free(arr);
}

CAMLprim value forkroad_posix_spawn(value vprog, value vargv, value venvp)
{
  CAMLparam3(vprog, vargv, venvp);
  char *prog = strdup(String_val(vprog));
  char **argv = copy_string_array(vargv);
  char **envp = copy_string_array(venvp);
  pid_t pid = -1;
  int rc = ENOMEM;

  if (prog != NULL && argv != NULL && envp != NULL)
    rc = posix_spawn(&pid, prog, NULL, NULL, argv, envp);

  free(prog);
  free_string_array(argv);
  free_string_array(envp);
  CAMLreturn(Val_long(rc == 0 ? (long)pid : -(long)rc));
}

CAMLprim value forkroad_vfork_exec(value vprog, value vargv, value venvp)
{
  CAMLparam3(vprog, vargv, venvp);
  char *prog = strdup(String_val(vprog));
  char **argv = copy_string_array(vargv);
  char **envp = copy_string_array(venvp);
  long result;

  if (prog == NULL || argv == NULL || envp == NULL) {
    result = -(long)ENOMEM;
  } else {
    pid_t pid = vfork();
    if (pid == 0) {
      execve(prog, argv, envp);
      _exit(127); /* exec failure is only visible as exit status 127 */
    }
    result = pid > 0 ? (long)pid : -(long)errno;
  }

  free(prog);
  free_string_array(argv);
  free_string_array(envp);
  CAMLreturn(Val_long(result));
}

CAMLprim value forkroad_fork_exec(value vprog, value vargv, value venvp)
{
  CAMLparam3(vprog, vargv, venvp);
  char *prog = strdup(String_val(vprog));
  char **argv = copy_string_array(vargv);
  char **envp = copy_string_array(venvp);
  long result;

  if (prog == NULL || argv == NULL || envp == NULL) {
    result = -(long)ENOMEM;
  } else {
    pid_t pid = fork();
    if (pid == 0) {
      execve(prog, argv, envp);
      _exit(127);
    }
    result = pid > 0 ? (long)pid : -(long)errno;
  }

  free(prog);
  free_string_array(argv);
  free_string_array(envp);
  CAMLreturn(Val_long(result));
}

/* Plain fork + immediate _exit in the child: isolates pure
 * address-space-duplication cost from exec cost in the T1 bench. */
CAMLprim value forkroad_fork_exit(value unit)
{
  CAMLparam1(unit);
  pid_t pid = fork();
  if (pid == 0) _exit(0);
  CAMLreturn(Val_long(pid > 0 ? (long)pid : -(long)errno));
}

CAMLprim value forkroad_errno_name(value verr)
{
  CAMLparam1(verr);
  CAMLlocal1(result);
  result = caml_copy_string(strerror(Int_val(verr)));
  CAMLreturn(result);
}
