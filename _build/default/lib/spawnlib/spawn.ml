type error =
  | Exec_failed of Unix.error
  | Fork_failed of Unix.error

let error_message = function
  | Exec_failed e -> "exec failed: " ^ Unix.error_message e
  | Fork_failed e -> "fork failed: " ^ Unix.error_message e

type attr = {
  env : string array option;
  cwd : string option;
  new_session : bool;
}

let default_attr = { env = None; cwd = None; new_session = false }

(* The child reports a pre-exec failure by marshalling the Unix.error
   over a close-on-exec pipe; a successful exec closes the pipe and the
   parent reads EOF. Marshalling is safe here: same binary, same run. *)
let report_and_die w err =
  let payload = Marshal.to_bytes (err : Unix.error) [] in
  ignore (Unix.write w payload 0 (Bytes.length payload));
  Unix._exit 127

let child_branch w ~actions ~attr ~prog ~argv =
  try
    if attr.new_session then ignore (Unix.setsid ());
    (match attr.cwd with Some d -> Unix.chdir d | None -> ());
    List.iter File_action.apply actions;
    match attr.env with
    | Some env -> Unix.execve prog (Array.of_list argv) env
    | None -> Unix.execv prog (Array.of_list argv)
  with
  | Unix.Unix_error (err, _, _) -> report_and_die w err
  | _ -> report_and_die w (Unix.EUNKNOWNERR 0)

let spawn ?(actions = []) ?(attr = default_attr) ~prog ~argv () =
  let r, w = Unix.pipe ~cloexec:true () in
  match Unix.fork () with
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close r;
    Unix.close w;
    Error (Fork_failed err)
  | 0 -> child_branch w ~actions ~attr ~prog ~argv
  | pid -> (
    Unix.close w;
    let buf = Bytes.create 4096 in
    let n =
      let rec read_retry () =
        match Unix.read r buf 0 (Bytes.length buf) with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry ()
      in
      read_retry ()
    in
    Unix.close r;
    if n = 0 then Ok (Process.of_pid pid)
    else begin
      (* the child failed before exec and already exited: reap it *)
      ignore (Process.wait (Process.of_pid pid));
      let err : Unix.error = Marshal.from_bytes buf 0 in
      Error (Exec_failed err)
    end)

(* Transient spawn failures worth sleeping through: resource pressure
   (a retry may find memory / a pid slot free) and interruption. ENOENT,
   EACCES and friends are permanent — retrying cannot help. *)
let transient = function
  | Fork_failed (Unix.EAGAIN | Unix.ENOMEM | Unix.EINTR)
  | Exec_failed Unix.EINTR ->
    true
  | Fork_failed _ | Exec_failed _ -> false

let spawn_retrying ?(policy = Retry.default) ?actions ?attr ~prog ~argv () =
  Retry.with_policy policy ~sleep:Unix.sleepf ~should_retry:transient
    (fun ~attempt:_ -> spawn ?actions ?attr ~prog ~argv ())

let run ?actions ?attr ~prog ~argv () =
  Result.map Process.wait (spawn ?actions ?attr ~prog ~argv ())

let read_all_fd fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let fd_int : Unix.file_descr -> int = Obj.magic

let capture ?(actions = []) ?attr ~prog ~argv () =
  let r, w = Unix.pipe ~cloexec:true () in
  let actions = actions @ [ File_action.dup2 ~src:(fd_int w) ~dst:1 ] in
  match spawn ~actions ?attr ~prog ~argv () with
  | Error e ->
    Unix.close r;
    Unix.close w;
    Error e
  | Ok p ->
    Unix.close w;
    let output = read_all_fd r in
    Unix.close r;
    Ok (output, Process.wait p)

let shell cmd = run ~prog:"/bin/sh" ~argv:[ "sh"; "-c"; cmd ] ()
let shell_capture cmd = capture ~prog:"/bin/sh" ~argv:[ "sh"; "-c"; cmd ] ()
