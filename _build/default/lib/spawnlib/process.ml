type status = Exited of int | Signaled of int | Stopped of int

let status_of_unix = function
  | Unix.WEXITED c -> Exited c
  | Unix.WSIGNALED s -> Signaled s
  | Unix.WSTOPPED s -> Stopped s

let pp_status ppf = function
  | Exited c -> Format.fprintf ppf "exited(%d)" c
  | Signaled s -> Format.fprintf ppf "signaled(%d)" s
  | Stopped s -> Format.fprintf ppf "stopped(%d)" s

let status_equal (a : status) b = a = b

type t = int

let of_pid pid = pid
let pid t = t

let wait t =
  let _, st = Unix.waitpid [] t in
  status_of_unix st

let poll t =
  match Unix.waitpid [ Unix.WNOHANG ] t with
  | 0, _ -> None
  | _, st -> Some (status_of_unix st)

let kill t signal = Unix.kill t signal
