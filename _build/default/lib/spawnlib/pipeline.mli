(** Shell-style pipelines over the {!Spawn} engine.

    Builds [cmd1 | cmd2 | ...] by wiring pipes through spawn file
    actions — the structured replacement for the fork-and-plumb idiom. *)

type cmd = { prog : string; argv : string list }

val cmd : string -> string list -> cmd
(** [cmd prog args] — [argv.(0)] is set to [prog] automatically. *)

val run : cmd list -> (Process.status list, Spawn.error) result
(** Spawn every stage connected stdin-to-stdout, wait for all; statuses
    are in pipeline order. The first stage inherits stdin, the last
    inherits stdout. @raise Invalid_argument on an empty pipeline. *)

val run_capture : cmd list -> (string * Process.status list, Spawn.error) result
(** Like {!run} but captures the final stage's stdout. *)
