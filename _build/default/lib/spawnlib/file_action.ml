type t =
  | Open of { fd : int; path : string; flags : Unix.open_flag list; perm : int }
  | Dup2 of { src : int; dst : int }
  | Close of int
  | Chdir of string

let openf ?(flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ])
    ?(perm = 0o644) ~fd path =
  Open { fd; path; flags; perm }

let dup2 ~src ~dst = Dup2 { src; dst }
let close fd = Close fd
let chdir path = Chdir path

(* fds are represented as ints at this layer; conversion through
   file_descr is the standard (if unofficial) identity on Unix *)
let fd_of_int : int -> Unix.file_descr = Obj.magic
let int_of_fd : Unix.file_descr -> int = Obj.magic

let apply = function
  | Open { fd; path; flags; perm } ->
    let got = Unix.openfile path flags perm in
    if int_of_fd got <> fd then begin
      Unix.dup2 got (fd_of_int fd);
      Unix.close got
    end
  | Dup2 { src; dst } -> Unix.dup2 (fd_of_int src) (fd_of_int dst)
  | Close fd -> Unix.close (fd_of_int fd)
  | Chdir path -> Unix.chdir path

let stdout_to_file path = openf ~fd:1 path
let stderr_to_file path = openf ~fd:2 path

let stdin_from_file path =
  openf ~flags:[ Unix.O_RDONLY ] ~fd:0 path
