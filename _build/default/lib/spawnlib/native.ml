external posix_spawn_raw : string -> string array -> string array -> int
  = "forkroad_posix_spawn"

external vfork_exec_raw : string -> string array -> string array -> int
  = "forkroad_vfork_exec"

external fork_exec_raw : string -> string array -> string array -> int
  = "forkroad_fork_exec"

external fork_exit_raw : unit -> int = "forkroad_fork_exit"
external errno_name_raw : int -> string = "forkroad_errno_name"

let wrap result = if result >= 0 then Ok result else Error (-result)

let call raw ~prog ~argv ?(env = []) () =
  let argv = Array.of_list argv in
  let env =
    match env with
    | [] -> Unix.environment ()
    | e -> Array.of_list e
  in
  wrap (raw prog argv env)

let posix_spawn ~prog ~argv ?env () = call posix_spawn_raw ~prog ~argv ?env ()
let vfork_exec ~prog ~argv ?env () = call vfork_exec_raw ~prog ~argv ?env ()
let fork_exec ~prog ~argv ?env () = call fork_exec_raw ~prog ~argv ?env ()
let fork_exit () = wrap (fork_exit_raw ())
let errno_message e = errno_name_raw e

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> 128 + s
  | _, Unix.WSTOPPED s -> 128 + s
