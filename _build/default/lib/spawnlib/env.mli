(** Environment manipulation for spawned children.

    Spawn-style creation passes the child environment explicitly, so
    these helpers make "inherit, plus these overrides" easy to express
    without mutating the parent's environment (one of fork's implicit
    inheritances the paper flags). *)

type t

val current : unit -> t
(** Snapshot of the calling process environment. *)

val empty : t
val of_list : (string * string) list -> t
val to_array : t -> string array
(** ["KEY=value"] strings, sorted by key for determinism. *)

val get : t -> string -> string option
val set : t -> string -> string -> t
val unset : t -> string -> t
val merge : t -> t -> t
(** [merge base overrides]: keys in [overrides] win. *)

val cardinal : t -> int
