type cmd = { prog : string; argv : string list }

let cmd prog args = { prog; argv = prog :: args }

let fd_int : Unix.file_descr -> int = Obj.magic

(* Spawn the stages left to right; [input] is the read end the next stage
   should use as stdin (None = inherit). [sink] is an optional fd the
   LAST stage's stdout should be redirected to. *)
let spawn_stages cmds ~sink =
  let rec go acc input = function
    | [] -> Ok (List.rev acc)
    | stage :: rest ->
      let is_last = rest = [] in
      let next_input, stdout_action =
        if is_last then
          ( None,
            match sink with
            | Some fd -> [ File_action.dup2 ~src:(fd_int fd) ~dst:1 ]
            | None -> [] )
        else begin
          let r, w = Unix.pipe ~cloexec:true () in
          (Some (r, w), [ File_action.dup2 ~src:(fd_int w) ~dst:1 ])
        end
      in
      let stdin_action =
        match input with
        | Some (r, _) -> [ File_action.dup2 ~src:(fd_int r) ~dst:0 ]
        | None -> []
      in
      let result =
        Spawn.spawn
          ~actions:(stdin_action @ stdout_action)
          ~prog:stage.prog ~argv:stage.argv ()
      in
      (* parent closes its copies of this stage's pipe ends *)
      (match input with
      | Some (r, w) ->
        Unix.close r;
        Unix.close w
      | None -> ());
      (match result with
      | Error e ->
        (* reap what we already started *)
        List.iter (fun p -> ignore (Process.wait p)) (List.rev acc);
        (match next_input with
        | Some (r, w) ->
          Unix.close r;
          Unix.close w
        | None -> ());
        Error e
      | Ok p -> go (p :: acc) next_input rest)
  in
  go [] None cmds

let run cmds =
  if cmds = [] then invalid_arg "Pipeline.run: empty pipeline";
  Result.map (List.map Process.wait) (spawn_stages cmds ~sink:None)

let read_all_fd fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run_capture cmds =
  if cmds = [] then invalid_arg "Pipeline.run_capture: empty pipeline";
  let r, w = Unix.pipe ~cloexec:true () in
  match spawn_stages cmds ~sink:(Some w) with
  | Error e ->
    Unix.close r;
    Unix.close w;
    Error e
  | Ok procs ->
    Unix.close w;
    let output = read_all_fd r in
    Unix.close r;
    Ok (output, List.map Process.wait procs)
