let geometric ~base ~factor ~count =
  if base <= 0 || count <= 0 || factor < 2 then
    invalid_arg "Sweep.geometric: bad parameters";
  List.init count (fun i ->
      let rec pow acc n = if n = 0 then acc else pow (acc * factor) (n - 1) in
      pow base i)

let fig1_mib = [ 0; 1; 4; 16; 64; 256; 1024 ]
let fig1_sim_mib = [ 0; 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536 ]
let vma_counts = [ 1; 16; 64; 256; 1024; 4096 ]
let thread_counts = [ 1; 2; 4; 8; 16 ]
let pages_of_mib mib = mib * 256
let bytes_of_mib mib = mib * 1024 * 1024
