let now_ns () = Unix.gettimeofday () *. 1e9

let time_ns f =
  let t0 = now_ns () in
  let result = f () in
  (result, now_ns () -. t0)

let sample ?(warmup = 3) ~n f =
  if n <= 0 then invalid_arg "Timer.sample: n <= 0";
  for _ = 1 to warmup do f () done;
  Array.init n (fun _ ->
      let (), dt = time_ns f in
      dt)
