(** Wall-clock sampling for the real-OS benches.

    Process creation costs hundreds of microseconds and up, so
    [Unix.gettimeofday]'s microsecond granularity is ample; each sample
    times one operation, and the harness reports distribution statistics
    over many samples. *)

val now_ns : unit -> float

val time_ns : (unit -> 'a) -> 'a * float
(** Result and elapsed nanoseconds of one call. *)

val sample : ?warmup:int -> n:int -> (unit -> unit) -> float array
(** [sample ~n f] runs [f] [warmup] times (default 3) untimed, then [n]
    times, returning per-run nanoseconds.
    @raise Invalid_argument if [n <= 0]. *)
