(** Real-OS parent-memory footprints for the Figure-1 sweep.

    A footprint is an actually-touched allocation held live while fork
    latency is measured, so the kernel has a correspondingly large page
    table / anon RSS to duplicate. *)

type t

val allocate : mib:int -> t
(** Allocate [mib] MiB (as a Bigarray outside the OCaml heap, so the GC
    neither moves nor scans it) and write one byte per 4 KiB page to
    commit it. [mib = 0] is a valid empty footprint. *)

val mib : t -> int
val touch_again : t -> unit
(** Re-dirty every page (defeats same-page merging across samples). *)

val checksum : t -> int
(** Reads a byte per page; keeps the allocation observably live. *)

val release : t -> unit
(** Drop the reference (memory returns to the GC's discretion). *)
