(** Parameter sweeps shared by the benches. *)

val geometric : base:int -> factor:int -> count:int -> int list
(** [geometric ~base ~factor ~count] = [[base; base*factor; ...]], count
    terms. @raise Invalid_argument on non-positive inputs or factor < 2. *)

val fig1_mib : int list
(** The Figure-1 x-axis for the {e real} sweep: parent footprint in MiB —
    [[0; 1; 4; 16; 64; 256; 1024]]. *)

val fig1_sim_mib : int list
(** The simulator sweep, extended past physical RAM:
    [[0; 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536]] — up to a 64 GiB
    parent footprint. *)

val vma_counts : int list
(** E8 x-axis: [[1; 16; 64; 256; 1024; 4096]]. *)

val thread_counts : int list
(** E3 x-axis: [[1; 2; 4; 8; 16]]. *)

val pages_of_mib : int -> int
val bytes_of_mib : int -> int
