lib/workload/timer.ml: Array Unix
