lib/workload/sweep.mli:
