lib/workload/par.ml: Array Atomic Domain List String Sys
