lib/workload/par.ml: Array Atomic Domain List Printf String Sys
