lib/workload/footprint.mli:
