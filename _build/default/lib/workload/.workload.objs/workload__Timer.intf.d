lib/workload/timer.mli:
