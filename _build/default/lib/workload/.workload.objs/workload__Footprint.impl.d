lib/workload/footprint.ml: Bigarray Char
