lib/workload/sweep.ml: List
