lib/workload/par.mli:
