type buffer =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mib : int; mutable buf : buffer option }

let page = 4096

let allocate ~mib =
  if mib < 0 then invalid_arg "Footprint.allocate: negative size";
  if mib = 0 then { mib; buf = None }
  else begin
    let bytes = mib * 1024 * 1024 in
    let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout bytes in
    let i = ref 0 in
    while !i < bytes do
      Bigarray.Array1.set buf !i 'x';
      i := !i + page
    done;
    { mib; buf = Some buf }
  end

let mib t = t.mib

let touch_again t =
  match t.buf with
  | None -> ()
  | Some buf ->
    let bytes = Bigarray.Array1.dim buf in
    let i = ref 0 in
    while !i < bytes do
      Bigarray.Array1.set buf !i 'y';
      i := !i + page
    done

let checksum t =
  match t.buf with
  | None -> 0
  | Some buf ->
    let bytes = Bigarray.Array1.dim buf in
    let acc = ref 0 in
    let i = ref 0 in
    while !i < bytes do
      acc := !acc + Char.code (Bigarray.Array1.get buf !i);
      i := !i + page
    done;
    !acc

let release t = t.buf <- None
