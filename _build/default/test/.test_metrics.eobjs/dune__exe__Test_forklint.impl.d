test/test_forklint.ml: Alcotest Forklore Ksim List Printf Result String
