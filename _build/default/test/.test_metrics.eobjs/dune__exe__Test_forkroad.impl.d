test/test_forkroad.ml: Alcotest Buffer Float Forkroad Ksim List Metrics Option Printf String Vmem
