test/test_forkroad.ml: Alcotest Buffer Float Forkroad Fun Ksim List Metrics Option Printf String Vmem Workload
