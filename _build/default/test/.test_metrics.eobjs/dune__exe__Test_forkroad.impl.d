test/test_forkroad.ml: Alcotest Buffer Forkroad Ksim List Metrics Option String Vmem
