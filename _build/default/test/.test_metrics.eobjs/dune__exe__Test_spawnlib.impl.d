test/test_spawnlib.ml: Alcotest Filename List Option Spawnlib String Sys Unix
