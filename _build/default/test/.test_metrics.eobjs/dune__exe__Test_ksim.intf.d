test/test_ksim.mli:
