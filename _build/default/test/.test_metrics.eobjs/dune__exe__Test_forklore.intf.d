test/test_forklore.mli:
