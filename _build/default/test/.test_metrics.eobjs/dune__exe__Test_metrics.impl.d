test/test_metrics.ml: Alcotest Array Float Gen List Metrics QCheck QCheck_alcotest String
