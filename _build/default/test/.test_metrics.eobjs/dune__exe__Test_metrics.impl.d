test/test_metrics.ml: Alcotest Array Float Gen List Metrics Option Printf QCheck QCheck_alcotest String
