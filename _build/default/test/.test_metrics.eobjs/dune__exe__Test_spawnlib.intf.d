test/test_spawnlib.mli:
