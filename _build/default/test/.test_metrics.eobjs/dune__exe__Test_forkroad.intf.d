test/test_forkroad.mli:
