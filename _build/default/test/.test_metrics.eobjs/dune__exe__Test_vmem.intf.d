test/test_vmem.mli:
