test/test_ksim.ml: Alcotest Format Ksim List Metrics Option Printf QCheck QCheck_alcotest Set String Vmem
