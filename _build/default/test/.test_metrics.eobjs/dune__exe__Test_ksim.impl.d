test/test_ksim.ml: Alcotest Format Ksim List Printf QCheck QCheck_alcotest Set String Vmem
