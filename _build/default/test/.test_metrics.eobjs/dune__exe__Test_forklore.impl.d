test/test_forklore.ml: Alcotest Array Filename Forklore List Prng QCheck QCheck_alcotest Result Sys Unix Workload
