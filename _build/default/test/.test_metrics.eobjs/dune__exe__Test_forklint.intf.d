test/test_forklint.mli:
