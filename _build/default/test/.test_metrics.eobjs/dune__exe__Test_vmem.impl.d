test/test_vmem.ml: Alcotest Gen Hashtbl Int List QCheck QCheck_alcotest Set Vmem
