test/test_vmem.ml: Alcotest Array Gen Hashtbl Int List Option Printf QCheck QCheck_alcotest Set Vmem
