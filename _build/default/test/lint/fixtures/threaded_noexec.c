#include <pthread.h>
#include <stdio.h>
#include <fcntl.h>

static void *worker(void *arg) {
    return arg;
}

int main(void) {
    pthread_t th;
    pthread_create(&th, NULL, worker, NULL);
    printf("hello from the parent\n");
    int fd = open("/tmp/scratch", O_RDWR);
    pid_t pid = fork();
    if (pid == 0) {
        handle_request(fd);
    }
    return 0;
}
