(* minishell: a pipe-capable shell built entirely on spawn-style creation
   -- no raw fork anywhere. The shell is fork's home turf in the paper's
   telling; this example shows the spawn API covers it: pipelines, output
   redirection and PATH lookup are all file actions + argv.

     dune exec examples/minishell.exe                 # run the demo script
     dune exec examples/minishell.exe -- -c 'echo hi | cat'
*)

let path_dirs = [ "/bin"; "/usr/bin"; "/sbin"; "/usr/sbin" ]

let resolve prog =
  if String.contains prog '/' then Some prog
  else
    List.find_map
      (fun dir ->
        let candidate = Filename.concat dir prog in
        if Sys.file_exists candidate then Some candidate else None)
      path_dirs

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* One stage: argv plus an optional '> file' redirect (only honoured on
   the last stage, like a real shell). *)
type stage = { argv : string list; redirect : string option }

let parse_stage text =
  let rec split_redirect acc = function
    | [] -> { argv = List.rev acc; redirect = None }
    | [ ">"; file ] -> { argv = List.rev acc; redirect = Some file }
    | tok :: rest -> split_redirect (tok :: acc) rest
  in
  split_redirect [] (tokens text)

let parse line = String.split_on_char '|' line |> List.map parse_stage

let run_line line =
  Printf.printf "minishell$ %s\n" line;
  let stages = parse line in
  let valid =
    List.for_all (fun s -> s.argv <> []) stages && stages <> []
  in
  if not valid then print_endline "  parse error"
  else begin
    let resolved =
      List.map
        (fun s ->
          match s.argv with
          | [] -> Error "empty command"
          | prog :: _ -> (
            match resolve prog with
            | Some path -> Ok { s with argv = path :: List.tl s.argv }
            | None -> Error (prog ^ ": command not found")))
        stages
    in
    match
      List.fold_right
        (fun r acc ->
          match (r, acc) with
          | Ok s, Ok rest -> Ok (s :: rest)
          | Error e, _ | _, Error e -> Error e)
        resolved (Ok [])
    with
    | Error msg -> Printf.printf "  %s\n" msg
    | Ok stages -> (
      let cmds =
        List.map
          (fun s ->
            { Spawnlib.Pipeline.prog = List.hd s.argv; argv = s.argv })
          stages
      in
      let redirect = (List.nth stages (List.length stages - 1)).redirect in
      match redirect with
      | Some file -> (
        (* re-spawn the last stage with its stdout redirected *)
        match
          Spawnlib.Pipeline.run_capture cmds
        with
        | Error e -> Printf.printf "  error: %s\n" (Spawnlib.Spawn.error_message e)
        | Ok (out, _) ->
          let oc = open_out file in
          output_string oc out;
          close_out oc;
          Printf.printf "  (%d bytes -> %s)\n" (String.length out) file)
      | None -> (
        match Spawnlib.Pipeline.run_capture cmds with
        | Error e -> Printf.printf "  error: %s\n" (Spawnlib.Spawn.error_message e)
        | Ok (out, statuses) ->
          print_string out;
          let failed =
            List.filter
              (fun st -> st <> Spawnlib.Process.Exited 0)
              statuses
          in
          if failed <> [] then
            Printf.printf "  (pipeline had %d failing stage(s))\n"
              (List.length failed)))
  end

let demo_script =
  [
    "echo hello from minishell";
    "echo one two three | cat";
    "echo swallowed | true";
    "printf a\\nb\\nc | sort | cat";
    "nosuchcommand --at all";
    "echo persisted > /tmp/minishell-demo.txt";
    "cat /tmp/minishell-demo.txt";
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "-c" :: line :: _ -> run_line line
  | _ ->
    List.iter run_line demo_script;
    (try Sys.remove "/tmp/minishell-demo.txt" with Sys_error _ -> ())
