(* Quickstart: the spawnlib public API in five snippets.

     dune exec examples/quickstart.exe

   spawnlib is the library form of the paper's recommendation: describe
   the child (program, argv, file actions, attributes) instead of
   fork()ing yourself and mutating. *)

let section title = Printf.printf "\n== %s ==\n%!" title

let show_status st = Format.asprintf "%a" Spawnlib.Process.pp_status st

let () =
  section "1. run a program and wait";
  (match Spawnlib.Spawn.run ~prog:"/bin/echo" ~argv:[ "echo"; "hello, spawn" ] () with
  | Ok st -> Printf.printf "echo finished: %s\n%!" (show_status st)
  | Error e -> Printf.printf "failed: %s\n" (Spawnlib.Spawn.error_message e));

  section "2. capture output";
  (match Spawnlib.Spawn.capture ~prog:"/bin/date" ~argv:[ "date"; "+%Y" ] () with
  | Ok (out, _) -> Printf.printf "the year is %s" out
  | Error e -> Printf.printf "failed: %s\n" (Spawnlib.Spawn.error_message e));

  section "3. file actions: redirect stdout to a file";
  let path = Filename.temp_file "quickstart" ".txt" in
  (match
     Spawnlib.Spawn.run
       ~actions:[ Spawnlib.File_action.stdout_to_file path ]
       ~prog:"/bin/echo" ~argv:[ "echo"; "written via file action" ] ()
   with
  | Ok _ ->
    let ic = open_in path in
    Printf.printf "file now contains: %s\n" (input_line ic);
    close_in ic;
    Sys.remove path
  | Error e -> Printf.printf "failed: %s\n" (Spawnlib.Spawn.error_message e));

  section "4. pipelines without hand-rolled fork plumbing";
  (match
     Spawnlib.Pipeline.run_capture
       [
         Spawnlib.Pipeline.cmd "/bin/echo" [ "c\na\nb" ];
         Spawnlib.Pipeline.cmd "/usr/bin/sort" [];
       ]
   with
  | Ok (out, _) -> Printf.printf "echo | sort gives:\n%s" out
  | Error e -> Printf.printf "failed: %s\n" (Spawnlib.Spawn.error_message e));

  section "5. synchronous errors (the spawn advantage)";
  (* fork+exec reports a missing binary in the CHILD, after the split;
     spawnlib reports it right here, to the caller *)
  match Spawnlib.Spawn.spawn ~prog:"/no/such/binary" ~argv:[ "x" ] () with
  | Error (Spawnlib.Spawn.Exec_failed err) ->
    Printf.printf "caller sees the error directly: %s\n" (Unix.error_message err)
  | Error e -> Printf.printf "failed differently: %s\n" (Spawnlib.Spawn.error_message e)
  | Ok _ -> Printf.printf "unexpectedly succeeded\n"
