(* fork_hazards: the paper's three headline hazards, reproduced live on
   the simulator with the actual kernel mechanisms (not mock-ups).

     dune exec examples/fork_hazards.exe

   Act 1 -- threads:   a lock held by a non-forked thread deadlocks the child.
   Act 2 -- stdio:     unflushed buffers are emitted twice after fork.
   Act 3 -- ASLR:      forked children all share the parent's layout. *)

let ok = function
  | Ok v -> v
  | Error e -> failwith ("fork_hazards: " ^ Ksim.Errno.to_string e)

let banner s =
  Printf.printf "\n=== %s ===\n" s

let boot body extra =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> body ()) in
  let true_prog = Ksim.Program.make ~name:"/bin/true" (fun ~argv:_ () -> Ksim.Api.exit 0) in
  match Ksim.Kernel.boot ~programs:(init :: true_prog :: extra) "/sbin/init" with
  | Error e -> failwith ("boot failed: " ^ Ksim.Errno.to_string e)
  | Ok (t, outcome) -> (t, outcome)

(* ------------------------------------------------------------------ *)

let act1_thread_deadlock () =
  banner "Act 1: fork vs threads";
  print_endline
    "A helper thread takes a mutex (think: another thread mid-malloc) and\n\
     blocks. The main thread forks. The child's copy of the mutex is held\n\
     by a thread that does not exist there; its first lock attempt hangs\n\
     forever.";
  let _, outcome =
    boot
      (fun () ->
        let m = Ksim.Api.mutex_create () in
        let r, _w = ok (Ksim.Api.pipe ()) in
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  ok (Ksim.Api.mutex_lock m);
                  ignore (Ksim.Api.read r 1))));
        Ksim.Api.yield ();
        ignore
          (ok
             (Ksim.Api.fork ~child:(fun () ->
                  ok (Ksim.Api.mutex_lock m);
                  Ksim.Api.exit 0)));
        Ksim.Api.exit 0)
      []
  in
  Format.printf "scheduler verdict: %a@." Ksim.Kernel.pp_outcome outcome;
  print_endline "(the child is parked on mutex_lock with no possible waker)"

(* ------------------------------------------------------------------ *)

let act2_double_flush () =
  banner "Act 2: fork vs buffered I/O";
  print_endline
    "The parent buffers a line in (simulated) user memory, forks, and both\n\
     processes flush on exit -- the classic doubled output:";
  let t, _ =
    boot
      (fun () ->
        let f = ok (Ksim.Stdio.fopen 1) in
        ok (Ksim.Stdio.puts f "ATOMIC LOG LINE\n");
        let pid =
          ok (Ksim.Api.fork ~child:(fun () ->
                  ok (Ksim.Stdio.flush f);
                  Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        ok (Ksim.Stdio.flush f))
      []
  in
  print_string (Ksim.Kernel.console t);
  let t2, _ =
    boot
      (fun () ->
        let f = ok (Ksim.Stdio.fopen 1) in
        ok (Ksim.Stdio.puts f "ATOMIC LOG LINE\n");
        let pid = ok (Ksim.Api.spawn "/bin/true") in
        ignore (ok (Ksim.Api.wait_for pid));
        ok (Ksim.Stdio.flush f))
      []
  in
  print_endline "with posix_spawn instead:";
  print_string (Ksim.Kernel.console t2)

(* ------------------------------------------------------------------ *)

let act3_aslr () =
  banner "Act 3: fork vs ASLR";
  print_endline
    "Five forked children map a page and report the address; then five\n\
     spawned children do the same. ASLR is on throughout:";
  let layout_prog =
    Ksim.Program.make ~name:"/bin/layout" (fun ~argv:_ () ->
        let a = ok (Ksim.Api.mmap ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.rw) in
        Ksim.Api.print (Printf.sprintf "0x%x\n" a);
        Ksim.Api.exit 0)
  in
  let t, _ =
    boot
      (fun () ->
        Ksim.Api.print "forked children:\n";
        for _ = 1 to 5 do
          let pid =
            ok
              (Ksim.Api.fork ~child:(fun () ->
                   let a =
                     ok (Ksim.Api.mmap ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.rw)
                   in
                   Ksim.Api.print (Printf.sprintf "0x%x\n" a);
                   Ksim.Api.exit 0))
          in
          ignore (ok (Ksim.Api.wait_for pid))
        done;
        Ksim.Api.print "spawned children:\n";
        for _ = 1 to 5 do
          let pid = ok (Ksim.Api.spawn "/bin/layout") in
          ignore (ok (Ksim.Api.wait_for pid))
        done)
      [ layout_prog ]
  in
  print_string (Ksim.Kernel.console t);
  print_endline
    "(identical addresses under fork: one leaked pointer de-randomizes\n\
     every worker; spawn re-rolls the layout per child)"

let () =
  act1_thread_deadlock ();
  act2_double_flush ();
  act3_aslr ()
