(* snapshot_server: the one fork idiom the paper concedes is genuinely
   hard to replace -- a cheap point-in-time snapshot (Redis BGSAVE).

     dune exec examples/snapshot_server.exe

   A "database" process owns a memory region and keeps mutating it. To
   persist, it forks: the child walks the (COW-shared) pages and saves
   them to a file while the parent keeps writing. The saved snapshot
   must reflect the exact fork instant -- none of the parent's
   concurrent writes may leak in. This example verifies that property
   byte-for-byte on the simulator, then shows what the snapshot cost the
   parent (E11 quantifies the same thing as a sweep). *)

let db_pages = 32
let page = Vmem.Addr.page_size

let ok = function
  | Ok v -> v
  | Error e -> failwith ("snapshot_server: " ^ Ksim.Errno.to_string e)

(* One byte per page is enough to carry the generation stamp. *)
let write_generation ~addr gen =
  for i = 0 to db_pages - 1 do
    ok (Ksim.Api.mem_write ~addr:(addr + (i * page)) (String.make 1 (Char.chr gen)))
  done

let read_generation_bytes ~addr =
  List.init db_pages (fun i ->
      (ok (Ksim.Api.mem_read ~addr:(addr + (i * page)) ~len:1)).[0])

let save_snapshot ~addr path =
  let fd = ok (Ksim.Api.openf ~flags:Ksim.Types.o_wronly path) in
  List.iter
    (fun byte ->
      ok (Ksim.Api.write_all fd (String.make 1 byte));
      (* be slow on purpose: give the parent time to interleave writes *)
      Ksim.Api.yield ())
    (read_generation_bytes ~addr);
  ok (Ksim.Api.close fd)

let database () =
  let addr = ok (Ksim.Api.mmap ~len:(db_pages * page) ~perm:Vmem.Perm.rw) in
  (* generation 7 is the state we want persisted *)
  write_generation ~addr 7;
  Ksim.Api.print (Printf.sprintf "parent: db at generation 7 (%d pages)\n" db_pages);
  let snapshotter =
    ok
      (Ksim.Api.fork ~child:(fun () ->
           save_snapshot ~addr "/tmp/db.snapshot";
           Ksim.Api.exit 0))
  in
  (* mutate aggressively while the child is saving *)
  write_generation ~addr 8;
  write_generation ~addr 9;
  Ksim.Api.print "parent: mutated through generations 8 and 9 during the save\n";
  ignore (ok (Ksim.Api.wait_for snapshotter));
  (* verdicts *)
  let live = read_generation_bytes ~addr in
  let all_gen g l = List.for_all (fun c -> Char.code c = g) l in
  Ksim.Api.print
    (Printf.sprintf "parent: live db is %s\n"
       (if all_gen 9 live then "uniformly generation 9" else "MIXED (bug!)"))

let () =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> database ()) in
  match Ksim.Kernel.boot ~programs:[ init ] "/sbin/init" with
  | Error e -> prerr_endline ("boot failed: " ^ Ksim.Errno.to_string e)
  | Ok (t, outcome) ->
    print_string (Ksim.Kernel.console t);
    let snapshot =
      match Ksim.Vfs.read_file (Ksim.Kernel.vfs t) ~cwd:"/" "/tmp/db.snapshot" with
      | Ok s -> s
      | Error _ -> ""
    in
    let consistent =
      String.length snapshot = db_pages
      && String.for_all (fun c -> Char.code c = 7) snapshot
    in
    Printf.printf "snapshot file: %d pages, %s\n" (String.length snapshot)
      (if consistent then
         "every byte from generation 7 -- a perfect point-in-time copy"
       else "INCONSISTENT");
    let cost = Ksim.Kernel.cost t in
    Printf.printf
      "what COW charged for it: %s of page copies (parent re-dirtying \
       while the child lived), %s of page-table copying at fork\n"
      (Metrics.Units.cycles (Vmem.Cost.get cost "fault:cow-copy"))
      (Metrics.Units.cycles
         (Vmem.Cost.get cost "fork:pte" +. Vmem.Cost.get cost "fork:pt-node"));
    Format.printf "simulation outcome: %a@." Ksim.Kernel.pp_outcome outcome
