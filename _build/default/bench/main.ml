(* Benchmark harness: regenerates every table and figure of the
   evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
   paper-vs-measured).

     dune exec bench/main.exe                 -- everything, full depth
     dune exec bench/main.exe -- --quick      -- everything, reduced depth
     dune exec bench/main.exe -- f1 e3        -- selected experiments
     dune exec bench/main.exe -- micro        -- bechamel micro-benches only

   The bechamel section measures real minimal-process creation with OLS
   regression (complementing T1's sample statistics); the experiment
   reports then follow in paper order. *)

open Bechamel
open Toolkit

let bechamel_creation_tests () =
  let strategies =
    List.filter Forkroad.Strategy.supported_real Forkroad.Strategy.all
  in
  let test_of s =
    Test.make
      ~name:(Forkroad.Strategy.name s)
      (Staged.stage (fun () -> Forkroad.Real_driver.creation_once s))
  in
  Test.make_grouped ~name:"creation" (List.map test_of strategies)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (bechamel_creation_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Metrics.Table.create ~align:[ Metrics.Table.Left ]
      [ "benchmark"; "ns/run (OLS)"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Metrics.Units.ns e
        | Some [] | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := (name, [ name; estimate; r2 ]) :: !rows)
    results;
  List.iter
    (fun (_, row) -> Metrics.Table.add_row table row)
    (List.sort compare !rows);
  print_endline "========================================================================";
  print_endline "[MICRO] bechamel: minimal-process creation, real OS (OLS ns/run)";
  print_endline "========================================================================";
  print_string (Metrics.Table.render table);
  print_newline ()

let run_experiment ~quick exp =
  let t0 = Unix.gettimeofday () in
  let report = exp.Forkroad.Report.run ~quick in
  let dt = Unix.gettimeofday () -. t0 in
  print_string (Forkroad.Report.render report);
  Printf.printf "paper claim: %s\n" exp.Forkroad.Report.paper_claim;
  Printf.printf "(generated in %.1fs)\n\n" dt

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.exists (fun a -> a = "--quick" || a = "-q") args in
  let selectors =
    List.filter (fun a -> a <> "--quick" && a <> "-q" && a <> "--") args
    |> List.map String.lowercase_ascii
  in
  let micro_only = selectors = [ "micro" ] in
  let want id =
    selectors = []
    || List.mem (String.lowercase_ascii id) selectors
  in
  if micro_only then run_bechamel ()
  else begin
    if selectors = [] then run_bechamel ();
    List.iter
      (fun exp ->
        if want exp.Forkroad.Report.exp_id then run_experiment ~quick exp)
      Forkroad.Registry.all;
    (match
       List.filter
         (fun s ->
           s <> "micro"
           && not
                (List.exists
                   (fun e ->
                     String.lowercase_ascii e.Forkroad.Report.exp_id = s)
                   Forkroad.Registry.all))
         selectors
     with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
        (String.concat ", " unknown)
        (String.concat ", " Forkroad.Registry.ids);
      exit 2)
  end
