let () =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.trace_capacity = Some 256 }
  in
  let init =
    Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () ->
        let pid =
          match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
          | Ok p -> p | Error _ -> failwith "fork"
        in
        ignore (Ksim.Api.wait_for pid))
  in
  match Ksim.Kernel.boot ~config ~programs:[ init ] "/sbin/init" with
  | Error _ -> failwith "boot"
  | Ok (t, _) ->
    let tr = Option.get (Ksim.Kernel.trace t) in
    List.iter
      (fun (e : Ksim.Trace.event) ->
        Printf.printf "%d pid=%d %-12s %s %s\n" e.seq e.pid e.what
          (Ksim.Trace.phase_string e.phase)
          (match e.outcome with
           | None -> "-"
           | Some Ksim.Trace.Ok_result -> "ok"
           | Some (Ksim.Trace.Err er) -> "err:" ^ Ksim.Errno.to_string er))
      (Ksim.Trace.events tr)
